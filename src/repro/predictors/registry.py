"""The predictor registry: names + config dicts → predictor factories.

Experiments, benchmarks, examples and the parallel suite runner all need
to describe *which* predictor to build without holding a live (heavily
stateful, numpy-backed) predictor object.  A :class:`PredictorSpec` is
that description: a registered ``kind`` string plus a configuration dict
of constructor keyword arguments.  Specs are small, picklable and
hashable, so they can cross process boundaries (the parallel runner ships
specs, not predictors) and key result caches.

Round trip::

    spec = PredictorSpec("gshare", {"log2_entries": 14})
    predictor = spec.build()          # or registry.create("gshare", log2_entries=14)
    assert spec_of(predictor) == spec # every built predictor carries its spec

Every predictor family in :mod:`repro.predictors` and :mod:`repro.core`
is registered here, including the Figure 9 power-of-two scaled variants
(``scaled-tage`` / ``scaled-tage-lsc``) and the bank-interleaved
organisations of Sections 4.3 and 7 (via the ``interleaved`` config key
on the composed predictors).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.predictors.base import Predictor

__all__ = [
    "PredictorSpec",
    "available",
    "backend_support",
    "create",
    "describe",
    "factory",
    "register",
    "spec_of",
]

#: kind → factory taking the spec's config dict as keyword arguments.
_REGISTRY: dict[str, Callable[..., Predictor]] = {}
#: kind → one-line description shown by :func:`describe`.
_DESCRIPTIONS: dict[str, str] = {}
#: kind → names of execution backends with a batched kernel for it.  The
#: staged interpreter supports everything, so "interp" is always present;
#: a backend named here additionally config-checks the spec itself (see
#: e.g. :meth:`repro.backends.vector.NumpyBackend.supports`).
_BACKEND_SUPPORT: dict[str, frozenset[str]] = {}


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to hashable tuples (for spec hashing)."""
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(item)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _require_kind(kind: str) -> None:
    """Raise a uniform KeyError when ``kind`` is not registered."""
    if kind not in _REGISTRY:
        raise KeyError(f"unknown predictor kind {kind!r}; registered kinds: {available()}")


@dataclass(frozen=True)
class PredictorSpec:
    """A serializable description of one predictor configuration.

    Attributes
    ----------
    kind:
        A name registered through :func:`register` (see :func:`available`).
    config:
        Keyword arguments passed to the registered factory.  Stored
        internally in a frozen, hashable form so specs can key caches and
        dictionaries.
    """

    kind: str
    _config: tuple = field(default=())

    def __init__(self, kind: str, config: Mapping[str, Any] | None = None) -> None:
        object.__setattr__(self, "kind", kind)
        raw = dict(config or {})
        object.__setattr__(self, "_config", _freeze(raw))
        # The caller's values verbatim: equality and hashing go through the
        # frozen form, but factories must receive exactly what was supplied
        # (nested dicts/lists included).
        object.__setattr__(self, "_raw", raw)

    @property
    def config(self) -> dict[str, Any]:
        """The configuration as a plain keyword-argument dict."""
        raw = getattr(self, "_raw", None)
        if raw is not None:
            return dict(raw)
        return {key: value for key, value in self._config}

    def build(self) -> Predictor:
        """Build a new predictor from this spec (and tag it with the spec)."""
        _require_kind(self.kind)
        predictor = _REGISTRY[self.kind](**self.config)
        predictor.spec = self
        return predictor

    def cache_key(self) -> str:
        """A stable string identifying this spec (used by result caches)."""
        try:
            config_text = json.dumps(self.config, sort_keys=True, default=repr)
        except TypeError:  # pragma: no cover - json with default=repr rarely fails
            config_text = repr(self._config)
        return f"{self.kind}:{config_text}"

    def __repr__(self) -> str:
        return f"PredictorSpec({self.kind!r}, {self.config!r})"


def register(
    kind: str,
    factory: Callable[..., Predictor] | None = None,
    *,
    description: str = "",
    backends: tuple[str, ...] = (),
):
    """Register a predictor factory under ``kind``.

    Usable directly (``register("gshare", GSharePredictor)``) or as a
    decorator on a factory function.  Registering an existing kind
    replaces it (useful for tests and user extensions) — including its
    backend capability tags, so a replacement factory is never executed
    by a batched kernel written for the original.

    ``backends`` names the execution backends (beyond the always-capable
    staged interpreter) that ship a batched kernel for this kind; see
    :func:`backend_support`.
    """

    def _register(func: Callable[..., Predictor]) -> Callable[..., Predictor]:
        _REGISTRY[kind] = func
        doc = (func.__doc__ or "").strip()
        _DESCRIPTIONS[kind] = description or (doc.splitlines()[0] if doc else "")
        _BACKEND_SUPPORT[kind] = frozenset(backends) | {"interp"}
        return func

    if factory is not None:
        return _register(factory)
    return _register


def available() -> list[str]:
    """Sorted names of every registered predictor kind."""
    return sorted(_REGISTRY)


def describe() -> Iterator[tuple[str, str]]:
    """Yield ``(kind, one-line description)`` for every registered kind."""
    for kind in available():
        yield kind, _DESCRIPTIONS.get(kind, "")


def backend_support(kind: str) -> frozenset[str]:
    """Names of the execution backends with a batched kernel for ``kind``.

    Always contains ``"interp"`` for registered kinds (the staged engine
    runs everything).  Unknown kinds return an empty set rather than
    raising: backends use this as a capability probe, and the scheduler's
    interp fallback will produce the canonical unknown-kind error.
    """
    return _BACKEND_SUPPORT.get(kind, frozenset())


def create(kind: str, **config: Any) -> Predictor:
    """Build a predictor by registered name, e.g. ``create("gshare", log2_entries=14)``."""
    return PredictorSpec(kind, config).build()


def factory(kind: str, **config: Any) -> Callable[[], Predictor]:
    """A zero-argument factory for ``kind`` (the `simulate_suite` contract).

    The spec is validated eagerly so that a typo fails at call site, not
    inside the suite loop.
    """
    _require_kind(kind)
    return PredictorSpec(kind, config).build


def spec_of(predictor: Predictor) -> PredictorSpec:
    """Return the spec a registry-built predictor was created from."""
    spec = getattr(predictor, "spec", None)
    if spec is None:
        raise ValueError(
            f"{predictor.name!r} was not built through the registry; "
            "construct it with repro.predictors.registry.create()/PredictorSpec.build()"
        )
    return spec


# ---------------------------------------------------------------------------
# Built-in registrations: every predictor family of the reproduction.
# ---------------------------------------------------------------------------


@register("always-taken", description="static taken baseline, zero storage")
def _always_taken() -> Predictor:
    from repro.predictors.static import AlwaysTakenPredictor

    return AlwaysTakenPredictor()


@register("always-not-taken", description="static not-taken baseline, zero storage")
def _always_not_taken() -> Predictor:
    from repro.predictors.static import AlwaysNotTakenPredictor

    return AlwaysNotTakenPredictor()


@register(
    "bimodal",
    description="PC-indexed 2-bit counters with shared hysteresis",
    backends=("numpy",),
)
def _bimodal(**config: Any) -> Predictor:
    from repro.predictors.bimodal import BimodalPredictor

    return BimodalPredictor(**config)


@register(
    "gshare",
    description="single 2-bit counter table, PC xor global history",
    backends=("numpy",),
)
def _gshare(**config: Any) -> Predictor:
    from repro.predictors.gshare import GSharePredictor

    return GSharePredictor(**config)


@register(
    "perceptron",
    description="the original neural predictor (Jimenez & Lin)",
    backends=("numpy",),
)
def _perceptron(**config: Any) -> Predictor:
    from repro.predictors.perceptron import PerceptronPredictor

    return PerceptronPredictor(**config)


@register(
    "gehl",
    description="GEometric History Length predictor (Section 4 baseline)",
    backends=("numpy",),
)
def _gehl(**config: Any) -> Predictor:
    from repro.predictors.gehl import GEHLConfig, GEHLPredictor

    if config:
        return GEHLPredictor(GEHLConfig(**config))
    return GEHLPredictor()


@register("snap", description="scaled piecewise-linear neural (OH-SNAP stand-in)")
def _snap(**config: Any) -> Predictor:
    from repro.predictors.snap import SNAPPredictor

    return SNAPPredictor(**config)


@register("ftl", description="fused global+local GEHL (FTL++ stand-in)")
def _ftl(**config: Any) -> Predictor:
    from repro.predictors.ftl import FTLConfig, FTLPredictor

    if config:
        return FTLPredictor(FTLConfig(**config))
    return FTLPredictor()


@register(
    "tage",
    description="the reference TAGE predictor (Section 3)",
    backends=("numpy",),
)
def _tage(**config: Any) -> Predictor:
    from repro.core.config import TAGEConfig
    from repro.core.tage import TAGEPredictor

    if not config:
        return TAGEPredictor()
    if "config" in config:
        extra = sorted(set(config) - {"config"})
        if extra:
            raise ValueError(
                f"'tage' spec mixes an explicit config object with generate "
                f"keys {extra}; pass one or the other"
            )
        return TAGEPredictor(config["config"])
    return TAGEPredictor(TAGEConfig.generate(**config))


@register("scaled-tage", description="reference TAGE scaled by 2**log2_factor (Figure 9)")
def _scaled_tage(log2_factor: int = 0) -> Predictor:
    from repro.analysis.sweep import scaled_tage

    return scaled_tage(log2_factor)


@register("augmented-tage", description="TAGE plus any subset of the side predictors")
def _augmented_tage(interleaved: bool = False, **config: Any) -> Predictor:
    from repro.core.augmented import AugmentedTAGE

    predictor = AugmentedTAGE(**config)
    if interleaved:
        predictor.enable_bank_interleaving()
    return predictor


@register("l-tage", description="TAGE + loop predictor (the CBP-2 winner)")
def _l_tage(**config: Any) -> Predictor:
    from repro.core.composed import LTAGEPredictor

    return LTAGEPredictor(**config)


@register("isl-tage", description="TAGE + IUM + loop + global SC (the CBP-3 winner)")
def _isl_tage(interleaved: bool = False, **config: Any) -> Predictor:
    from repro.core.composed import ISLTAGEPredictor

    predictor = ISLTAGEPredictor(**config)
    if interleaved:
        predictor.enable_bank_interleaving()
    return predictor


@register("tage-lsc", description="TAGE + IUM + local SC (the paper's proposal)")
def _tage_lsc(interleaved: bool = False, **config: Any) -> Predictor:
    from repro.core.composed import TAGELSCPredictor

    predictor = TAGELSCPredictor(**config)
    if interleaved:
        predictor.enable_bank_interleaving()
    return predictor


@register(
    "scaled-tage-lsc",
    description="TAGE-LSC with every component scaled by 2**log2_factor (Figure 9)",
)
def _scaled_tage_lsc(log2_factor: int = 0) -> Predictor:
    from repro.analysis.sweep import scaled_tage_lsc

    return scaled_tage_lsc(log2_factor)
