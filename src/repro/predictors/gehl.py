"""The GEometric History Length (GEHL / O-GEHL) predictor.

GEHL (Seznec, ISCA 2005) sums small signed counters read from several
tables indexed with geometrically increasing global-history lengths; the
sign of the sum is the prediction and the counters are trained, adder-tree
style, whenever the prediction is wrong or the sum's magnitude falls below
a dynamically adapted threshold.

In this reproduction GEHL plays three roles:

* the representative "neural-inspired" predictor of Section 4 (520 Kbit
  configuration: 13 tables x 8 K entries x 5-bit counters, (6, 2000)
  geometric series),
* the template of the Statistical Corrector predictor (Section 5.3),
* one half of the fused FTL-like comparator (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import mask
from repro.common.counters import SaturatingCounter, SignedCounterTable
from repro.common.storage import StorageReport
from repro.histories.folded import FoldedHistory
from repro.histories.geometric import geometric_series
from repro.histories.global_history import GlobalHistoryRegister
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["GEHLConfig", "GEHLPrediction", "GEHLPredictor"]


@dataclass(frozen=True)
class GEHLConfig:
    """Dimensions of a GEHL predictor.

    The defaults reproduce the 520 Kbit configuration the paper uses in
    Section 4 ("13 tables, 5 bit entries and 8K entries per table using
    (6, 2000) history length").
    """

    num_tables: int = 13
    log2_entries: int = 13
    counter_bits: int = 5
    min_history: int = 6
    max_history: int = 2000
    initial_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.num_tables < 2:
            raise ValueError("GEHL needs at least two tables")
        if not 1 <= self.log2_entries <= 24:
            raise ValueError("log2_entries out of range")
        if self.counter_bits < 2:
            raise ValueError("counter_bits must be at least 2")
        if self.min_history < 1 or self.max_history < self.min_history:
            raise ValueError("invalid history range")

    @property
    def history_lengths(self) -> tuple[int, ...]:
        """Per-table history lengths: 0 for T0, then the geometric series."""
        return (0, *geometric_series(self.min_history, self.max_history, self.num_tables - 1))

    @property
    def storage_bits(self) -> int:
        """Total counter storage."""
        return self.num_tables * (1 << self.log2_entries) * self.counter_bits


@dataclass
class GEHLPrediction(PredictionInfo):
    """Snapshot of a GEHL read: per-table indices and counter values, and the sum."""

    indices: tuple[int, ...] = ()
    counters: tuple[int, ...] = ()
    total: int = 0


class GEHLPredictor(Predictor):
    """Global-history GEHL predictor with dynamic update-threshold adaptation."""

    def __init__(self, config: GEHLConfig | None = None) -> None:
        self.config = config or GEHLConfig()
        self.name = f"gehl-{self.config.storage_bits // 1024}Kbits"
        self.history_lengths = self.config.history_lengths
        entries = 1 << self.config.log2_entries
        self.tables = [
            SignedCounterTable(entries, self.config.counter_bits)
            for _ in range(self.config.num_tables)
        ]
        self._history = GlobalHistoryRegister(capacity=max(64, self.config.max_history + 8))
        self._folds = [
            FoldedHistory(length, self.config.log2_entries) if length else None
            for length in self.history_lengths
        ]
        # Dynamic update threshold (O-GEHL's TC mechanism): the threshold
        # grows when mispredictions dominate and shrinks when low-magnitude
        # correct predictions dominate, balancing the two update causes.
        initial = self.config.initial_threshold
        self.threshold = initial if initial is not None else self.config.num_tables
        self._threshold_counter = SaturatingCounter(bits=7, signed=True, value=0)

    # -- indexing -----------------------------------------------------------

    def _index(self, pc: int, table: int) -> int:
        fold = self._folds[table]
        width = self.config.log2_entries
        pc_hash = (pc >> 2) ^ (pc >> (2 + width))
        if fold is None:
            return pc_hash & mask(width)
        return (pc_hash ^ fold.value ^ (fold.value >> (width - table % width or 1))) & mask(width)

    def indices(self, pc: int) -> tuple[int, ...]:
        """Per-table indices the branch at ``pc`` reads right now."""
        return tuple(self._index(pc, t) for t in range(self.config.num_tables))

    # -- Predictor interface -------------------------------------------------

    def predict(self, pc: int) -> GEHLPrediction:
        indices = self.indices(pc)
        counters = tuple(self.tables[t][indices[t]] for t in range(self.config.num_tables))
        total = sum(2 * c + 1 for c in counters)
        return GEHLPrediction(taken=total >= 0, indices=indices, counters=counters, total=total)

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        new_bit = 1 if taken else 0
        for fold, length in zip(self._folds, self.history_lengths):
            if fold is None:
                continue
            dropped = self._history.bit(length - 1) if length - 1 < len(self._history) else 0
            fold.update(new_bit, dropped)
        self._history.push(taken)

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, GEHLPrediction):
            raise TypeError("GEHL update needs the GEHLPrediction returned by predict()")
        stats = UpdateStats()
        mispredicted = info.taken != taken
        if not mispredicted and abs(info.total) >= self.threshold:
            # Confident and correct: no counter is trained (GEHL's partial
            # update policy); only the threshold bookkeeping may move.
            return stats

        for table in range(self.config.num_tables):
            index = info.indices[table]
            if reread:
                counter = self.tables[table][index]
                stats.entry_reads += 1
            else:
                counter = info.counters[table]
            step = 1 if taken else -1
            new_value = max(self.tables[table].lo, min(self.tables[table].hi, counter + step))
            if new_value != self.tables[table][index]:
                self.tables[table][index] = new_value
                stats.entry_writes += 1
                stats.tables_written += 1

        self._adapt_threshold(mispredicted)
        return stats

    def _adapt_threshold(self, mispredicted: bool) -> None:
        """O-GEHL dynamic threshold fitting.

        Mispredictions push the threshold up, low-confidence correct
        predictions push it down; the 7-bit counter has to saturate before
        the threshold moves, which low-pass filters the adaptation.
        """
        if mispredicted:
            self._threshold_counter.increment()
            if self._threshold_counter.value == self._threshold_counter.hi:
                self.threshold += 1
                self._threshold_counter.set(0)
        else:
            self._threshold_counter.decrement()
            if self._threshold_counter.value == self._threshold_counter.lo:
                self.threshold = max(1, self.threshold - 1)
                self._threshold_counter.set(0)

    def storage_report(self) -> StorageReport:
        report = StorageReport(self.name)
        for table, length in enumerate(self.history_lengths):
            report.add(
                f"T{table} counters (L={length})",
                1 << self.config.log2_entries,
                self.config.counter_bits,
            )
        report.add("threshold counter", 1, 7)
        report.add("threshold register", 1, 8)
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        for table in self.tables:
            table.fill(0)
        self._history.clear()
        for fold in self._folds:
            if fold is not None:
                fold.clear()
        self.threshold = (
            self.config.initial_threshold
            if self.config.initial_threshold is not None
            else self.config.num_tables
        )
        self._threshold_counter.set(0)
