"""PC-indexed bimodal predictor with optional shared hysteresis.

The bimodal table is both the simplest useful branch predictor and the
base (T0) component of TAGE.  The paper's reference TAGE configuration
uses "32K prediction bits + 8K hysteresis bits": each entry owns its
prediction bit but four neighbouring entries share one hysteresis bit,
halving the cost of the classic 2-bit counter at a negligible accuracy
cost.  This module implements that structure (a sharing factor of 1
recovers the plain 2-bit-counter bimodal table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.storage import StorageReport
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["BimodalPredictor", "BimodalPrediction"]


@dataclass
class BimodalPrediction(PredictionInfo):
    """Snapshot of a bimodal read: the 2-bit counter value and its indices."""

    index: int = 0
    hysteresis_index: int = 0
    counter: int = 0  # combined 2-bit value: 2*pred + hyst


class BimodalPredictor(Predictor):
    """A table of 2-bit counters with a configurable hysteresis sharing factor.

    Parameters
    ----------
    entries:
        Number of prediction bits (power of two).
    hysteresis_sharing:
        How many prediction bits share one hysteresis bit; the paper's
        reference TAGE base predictor uses 4.
    """

    def __init__(self, entries: int = 4096, hysteresis_sharing: int = 1) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries}")
        if hysteresis_sharing < 1 or entries % hysteresis_sharing:
            raise ValueError("hysteresis_sharing must divide the number of entries")
        self.name = f"bimodal-{entries}"
        self.entries = entries
        self.hysteresis_sharing = hysteresis_sharing
        self._index_mask = entries - 1
        # Power-on state: weakly taken (prediction 1, hysteresis 0).  Branch
        # streams are strongly taken-biased (loop back-edges dominate), so
        # initialising toward taken minimises the cold-start penalty on
        # large-footprint workloads — the convention the CBP simulators use.
        self._prediction = np.ones(entries, dtype=np.int8)
        self._hysteresis = np.zeros(entries // hysteresis_sharing, dtype=np.int8)

    # -- indexing -----------------------------------------------------------

    def index(self, pc: int) -> int:
        """Map a branch PC to its prediction-bit index."""
        return (pc >> 2) & self._index_mask

    def _hysteresis_index(self, index: int) -> int:
        return index // self.hysteresis_sharing

    def read_counter(self, pc: int) -> int:
        """Return the combined 2-bit counter value (0..3) for ``pc``."""
        index = self.index(pc)
        hyst_index = self._hysteresis_index(index)
        return 2 * int(self._prediction[index]) + int(self._hysteresis[hyst_index])

    # -- Predictor interface -------------------------------------------------

    def predict(self, pc: int) -> BimodalPrediction:
        index = self.index(pc)
        hyst_index = self._hysteresis_index(index)
        counter = 2 * int(self._prediction[index]) + int(self._hysteresis[hyst_index])
        return BimodalPrediction(
            taken=counter >= 2, index=index, hysteresis_index=hyst_index, counter=counter
        )

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        """The bimodal predictor keeps no history."""

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, BimodalPrediction):
            raise TypeError("bimodal update needs the BimodalPrediction returned by predict()")
        stats = UpdateStats()
        index = info.index
        hyst_index = info.hysteresis_index
        if reread:
            counter = 2 * int(self._prediction[index]) + int(self._hysteresis[hyst_index])
            stats.entry_reads += 1
        else:
            counter = info.counter
        new_counter = min(3, counter + 1) if taken else max(0, counter - 1)
        new_prediction = new_counter >> 1
        new_hysteresis = new_counter & 1
        wrote = False
        if new_prediction != int(self._prediction[index]):
            self._prediction[index] = new_prediction
            wrote = True
        if new_hysteresis != int(self._hysteresis[hyst_index]):
            self._hysteresis[hyst_index] = new_hysteresis
            wrote = True
        if wrote:
            stats.entry_writes += 1
            stats.tables_written += 1
        return stats

    def storage_report(self) -> StorageReport:
        report = StorageReport(self.name)
        report.add("prediction bits", self.entries, 1)
        report.add("hysteresis bits", self.entries // self.hysteresis_sharing, 1)
        return report

    def reset(self) -> None:
        """Restore the power-on state."""
        self._prediction.fill(1)
        self._hysteresis.fill(0)
