"""Baseline conditional branch predictors and the predictor registry.

These are the predictors the paper compares TAGE against, plus the
building blocks the side predictors reuse:

* :class:`~repro.predictors.bimodal.BimodalPredictor` — PC-indexed 2-bit
  counters with optional shared hysteresis (also TAGE's base component),
* :class:`~repro.predictors.gshare.GSharePredictor` — the first-generation
  global-history predictor used in Section 4,
* :class:`~repro.predictors.perceptron.PerceptronPredictor` — the original
  neural predictor,
* :class:`~repro.predictors.gehl.GEHLPredictor` — the GEometric History
  Length predictor (global or local history), representative of
  neural-inspired predictors in Section 4 and the basis of the Statistical
  Corrector,
* :class:`~repro.predictors.snap.SNAPPredictor` — a scaled neural /
  piecewise-linear predictor standing in for OH-SNAP (Section 6.3),
* :class:`~repro.predictors.ftl.FTLPredictor` — a fused global+local GEHL
  predictor standing in for FTL++ (Section 6.3),
* :class:`~repro.predictors.static.AlwaysTakenPredictor` /
  :class:`~repro.predictors.static.AlwaysNotTakenPredictor` — trivial
  references used in tests and sanity checks.

All predictors implement the :class:`~repro.predictors.base.Predictor`
interface, whose prediction/update split models the fetch-time read and
retire-time update of a real pipeline (see :mod:`repro.pipeline`).

:mod:`repro.predictors.registry` maps string names plus config dicts to
factories for every predictor in the package (including the composed
TAGE-family predictors of :mod:`repro.core`); a
:class:`~repro.predictors.registry.PredictorSpec` is the picklable unit
the parallel suite runner and result caches work with.
"""

from repro.predictors.base import PredictionInfo, Predictor, UpdateStats
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.ftl import FTLPredictor
from repro.predictors.gehl import GEHLPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.registry import PredictorSpec, create, spec_of
from repro.predictors.snap import SNAPPredictor
from repro.predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor

__all__ = [
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "FTLPredictor",
    "GEHLPredictor",
    "GSharePredictor",
    "PerceptronPredictor",
    "PredictionInfo",
    "Predictor",
    "PredictorSpec",
    "SNAPPredictor",
    "UpdateStats",
    "create",
    "spec_of",
]
