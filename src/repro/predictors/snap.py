"""A scaled neural analog / piecewise-linear style predictor (OH-SNAP stand-in).

Section 6.3 of the paper compares ISL-TAGE and TAGE-LSC against the other
CBP-3 finalists; OH-SNAP (Jimenez) is a piecewise-linear neural predictor
with per-position weight scaling.  The exact CBP-3 configuration is not
reproducible (it relies on contest-specific tricks), so this module
implements the published algorithmic core:

* hashed weight tables indexed by (branch PC, history position, path PC),
  which is the piecewise-linear idea of separating weights by the path
  leading to the branch,
* per-position scaling coefficients that emphasise recent history — the
  "scaled" part of SNAP,
* threshold-based training with dynamic threshold adaptation.

It is used only as a comparator for the Figure 10 experiment, always under
update scenario [A] (it re-reads its tables at retire time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.bits import mask
from repro.common.counters import SaturatingCounter
from repro.common.storage import StorageReport
from repro.histories.global_history import GlobalHistoryRegister
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["SNAPPredictor", "SNAPPrediction"]


@dataclass
class SNAPPrediction(PredictionInfo):
    """Snapshot of a SNAP read: per-position table indices, history bits and the sum."""

    bias_index: int = 0
    indices: tuple[int, ...] = ()
    history_bits: tuple[int, ...] = ()
    total: float = 0.0


class SNAPPredictor(Predictor):
    """Piecewise-linear neural predictor with scaled per-position weights.

    Parameters
    ----------
    history_length:
        Number of (history position, path) weight contributions summed.
    log2_entries:
        Log2 of the entries of each per-position weight table.
    weight_bits:
        Width of each signed weight.
    """

    def __init__(
        self,
        history_length: int = 48,
        log2_entries: int = 11,
        weight_bits: int = 6,
    ) -> None:
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if not 4 <= log2_entries <= 20:
            raise ValueError("log2_entries out of range")
        if weight_bits < 2:
            raise ValueError("weight_bits must be at least 2")
        self.history_length = history_length
        self.log2_entries = log2_entries
        self.entries = 1 << log2_entries
        self.weight_bits = weight_bits
        self._weight_min = -(1 << (weight_bits - 1))
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self.name = f"snap-{history_length}x{self.entries}"
        # One weight table per history position plus a bias table.
        self._weights = np.zeros((history_length, self.entries), dtype=np.int32)
        self._bias = np.zeros(self.entries, dtype=np.int32)
        # Per-position scaling coefficients: recent history weighs more, the
        # analog-summation insight behind the SNAP family.
        self._scales = np.array(
            [1.0 / (1.0 + 0.03 * position) for position in range(history_length)]
        )
        self._history = GlobalHistoryRegister(capacity=max(64, history_length))
        self._path: deque[int] = deque(maxlen=history_length)
        self._initial_threshold = int(2.14 * (history_length + 1) + 20.58)
        self.threshold = self._initial_threshold
        self._threshold_counter = SaturatingCounter(bits=7, signed=True, value=0)

    def _bias_index(self, pc: int) -> int:
        return ((pc >> 2) ^ (pc >> (2 + self.log2_entries))) & mask(self.log2_entries)

    def _position_index(self, pc: int, position: int) -> int:
        path_pc = self._path[-1 - position] if position < len(self._path) else 0
        return ((pc >> 2) ^ (path_pc >> 2) ^ (position << 3)) & mask(self.log2_entries)

    def predict(self, pc: int) -> SNAPPrediction:
        bias_index = self._bias_index(pc)
        indices = tuple(
            self._position_index(pc, position) for position in range(self.history_length)
        )
        bits = tuple(self._history.bit(position) for position in range(self.history_length))
        total = float(self._bias[bias_index])
        for position in range(self.history_length):
            weight = float(self._weights[position][indices[position]])
            signed = weight if bits[position] else -weight
            total += self._scales[position] * signed
        return SNAPPrediction(
            taken=bool(total >= 0.0),
            bias_index=bias_index,
            indices=indices,
            history_bits=bits,
            total=float(total),
        )

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        self._history.push(taken)
        self._path.append(pc)

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, SNAPPrediction):
            raise TypeError("SNAP update needs the SNAPPrediction returned by predict()")
        stats = UpdateStats()
        mispredicted = info.taken != taken
        if not mispredicted and abs(info.total) > self.threshold:
            return stats

        stats.entry_reads += 1 + self.history_length
        direction = 1 if taken else -1
        new_bias = int(
            np.clip(self._bias[info.bias_index] + direction, self._weight_min, self._weight_max)
        )
        if new_bias != int(self._bias[info.bias_index]):
            self._bias[info.bias_index] = new_bias
            stats.entry_writes += 1
            stats.tables_written += 1
        for position in range(self.history_length):
            index = info.indices[position]
            agree = 1 if (info.history_bits[position] == 1) == taken else -1
            old = int(self._weights[position][index])
            new = int(np.clip(old + agree, self._weight_min, self._weight_max))
            if new != old:
                self._weights[position][index] = new
                stats.entry_writes += 1
                stats.tables_written += 1

        self._adapt_threshold(mispredicted)
        return stats

    def _adapt_threshold(self, mispredicted: bool) -> None:
        """Dynamic threshold fitting, identical in spirit to O-GEHL's."""
        if mispredicted:
            self._threshold_counter.increment()
            if self._threshold_counter.value == self._threshold_counter.hi:
                self.threshold += 1
                self._threshold_counter.set(0)
        else:
            self._threshold_counter.decrement()
            if self._threshold_counter.value == self._threshold_counter.lo:
                self.threshold = max(1, self.threshold - 1)
                self._threshold_counter.set(0)

    def storage_report(self) -> StorageReport:
        report = StorageReport(self.name)
        report.add("bias weights", self.entries, self.weight_bits)
        report.add("position weights", self.history_length * self.entries, self.weight_bits)
        return report

    def reset(self) -> None:
        """Restore the power-on state (including the adaptive threshold)."""
        self._weights.fill(0)
        self._bias.fill(0)
        self._history.clear()
        self._path.clear()
        self.threshold = self._initial_threshold
        self._threshold_counter.set(0)
