"""The gshare predictor (McFarling, 1993).

Section 4 of the paper uses a 512 Kbit gshare as the representative
"first-generation" global-history predictor to show that, unlike TAGE, it
*cannot* tolerate skipping the retire-time table read: a single table of
2-bit counters accumulates several in-flight updates to the same entry,
and writing back a stale fetch-time value destroys them (scenario [B]
degrades 944 → 1292 MPPKI in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bits import mask
from repro.common.storage import StorageReport
from repro.histories.global_history import GlobalHistoryRegister
from repro.predictors.base import PredictionInfo, Predictor, UpdateStats

__all__ = ["GSharePredictor", "GSharePrediction"]


@dataclass
class GSharePrediction(PredictionInfo):
    """Snapshot of a gshare read: the table index and 2-bit counter value."""

    index: int = 0
    counter: int = 0


class GSharePredictor(Predictor):
    """Single table of 2-bit counters indexed by ``PC xor global history``.

    Parameters
    ----------
    log2_entries:
        Log2 of the number of counters; the paper's 512 Kbit configuration
        corresponds to ``log2_entries=18`` (256 K two-bit counters).
    history_length:
        Number of global-history bits XORed into the index; defaults to
        ``log2_entries`` as in the original design.
    """

    def __init__(self, log2_entries: int = 18, history_length: int | None = None) -> None:
        if log2_entries < 2 or log2_entries > 26:
            raise ValueError("log2_entries must be between 2 and 26")
        self.log2_entries = log2_entries
        self.entries = 1 << log2_entries
        self.history_length = history_length if history_length is not None else log2_entries
        if self.history_length < 0 or self.history_length > log2_entries:
            raise ValueError("history_length must be in [0, log2_entries]")
        self.name = f"gshare-{self.entries * 2 // 1024}Kbits"
        # 2-bit counters, initialised weakly taken (branch streams are
        # taken-biased, so this minimises the cold-start penalty).
        self._counters = np.full(self.entries, 2, dtype=np.int8)
        self._history = GlobalHistoryRegister(capacity=max(64, self.history_length))

    def index(self, pc: int) -> int:
        """gshare index: branch address XOR global history."""
        history = self._history.value(self.history_length)
        return ((pc >> 2) ^ history) & mask(self.log2_entries)

    def predict(self, pc: int) -> GSharePrediction:
        index = self.index(pc)
        counter = int(self._counters[index])
        return GSharePrediction(taken=counter >= 2, index=index, counter=counter)

    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        self._history.push(taken)

    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        if not isinstance(info, GSharePrediction):
            raise TypeError("gshare update needs the GSharePrediction returned by predict()")
        stats = UpdateStats()
        index = info.index
        if reread:
            counter = int(self._counters[index])
            stats.entry_reads += 1
        else:
            counter = info.counter
        new_counter = min(3, counter + 1) if taken else max(0, counter - 1)
        if new_counter != int(self._counters[index]):
            self._counters[index] = new_counter
            stats.entry_writes += 1
            stats.tables_written += 1
        return stats

    def storage_report(self) -> StorageReport:
        report = StorageReport(self.name)
        report.add("2-bit counters", self.entries, 2)
        return report

    def reset(self) -> None:
        """Restore the power-on state and clear the history."""
        self._counters.fill(2)
        self._history.clear()
