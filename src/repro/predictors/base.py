"""The common predictor interface.

The paper's central hardware argument (Section 4) is about *when* the
predictor tables are read and written: a branch is predicted at fetch time
but its tables are only updated at retire time, and the update may either
re-read the tables (scenario [A]), reuse the values read at fetch time
(scenario [B]) or re-read only on a misprediction (scenario [C]).

The interface below makes those scenarios expressible for every predictor:

* :meth:`Predictor.predict` reads the tables and returns a
  :class:`PredictionInfo` that *snapshots* everything the update needs,
* :meth:`Predictor.update_history` advances the speculative histories at
  fetch time (trace-driven simulation models perfect history repair, as
  the CBP framework does),
* :meth:`Predictor.update` applies the retire-time table update, either
  re-reading the tables (``reread=True``) or trusting the possibly stale
  snapshot (``reread=False``), and reports how many table entries were
  actually modified so that silent updates can be accounted for.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.common.storage import StorageReport

__all__ = ["PredictionInfo", "UpdateStats", "Predictor"]


@dataclass
class PredictionInfo:
    """Everything a predictor read (and decided) at prediction time.

    Concrete predictors subclass this to carry the table values they read,
    so that a retire-time update can be performed without re-reading the
    tables (update scenarios [B] and [C] of the paper).

    Attributes
    ----------
    taken:
        The predicted direction.
    """

    taken: bool = False


@dataclass
class UpdateStats:
    """Table activity caused by one retire-time update.

    Attributes
    ----------
    entry_reads:
        Number of table entries re-read during the update (zero when the
        update runs from the fetch-time snapshot).
    entry_writes:
        Number of table entries whose stored value actually changed.
        Silent updates — writes of the value already held — are *not*
        counted, matching the paper's "effective writes" metric.
    tables_written:
        Number of distinct predictor tables touched by an effective write.
    allocations:
        Number of new tagged entries allocated (TAGE-family predictors).
    """

    entry_reads: int = 0
    entry_writes: int = 0
    tables_written: int = 0
    allocations: int = 0

    def merge(self, other: "UpdateStats") -> None:
        """Accumulate another update's activity into this one."""
        self.entry_reads += other.entry_reads
        self.entry_writes += other.entry_writes
        self.tables_written += other.tables_written
        self.allocations += other.allocations


class Predictor(ABC):
    """Abstract conditional branch predictor.

    The life of one branch through a predictor is::

        info = predictor.predict(pc)          # fetch-time table read
        predictor.update_history(pc, taken)   # fetch-time speculative history
        ...                                   # (other branches fetched)
        predictor.update(pc, taken, info,     # retire-time table update
                         reread=...)

    The trace-driven simulators in :mod:`repro.pipeline` drive exactly this
    sequence; :func:`repro.pipeline.simulate` collapses it into the
    immediate-update oracle (scenario [I]).
    """

    #: Human-readable predictor name used in reports.
    name: str = "predictor"

    @abstractmethod
    def predict(self, pc: int) -> PredictionInfo:
        """Read the predictor tables and return the prediction snapshot."""

    @abstractmethod
    def update_history(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        """Advance the speculative histories after the branch is fetched.

        Trace-driven simulation only sees correct-path branches, so the
        history is updated with the resolved direction — equivalent to a
        hardware front-end with immediate history repair on mispredictions
        (the paper notes this repair is cheap, Section 5.1).
        """

    @abstractmethod
    def update(
        self, pc: int, taken: bool, info: PredictionInfo, reread: bool = True
    ) -> UpdateStats:
        """Apply the retire-time table update and report the table activity.

        Parameters
        ----------
        pc, taken:
            The retiring branch and its resolved direction.
        info:
            The snapshot returned by :meth:`predict` for this branch.
        reread:
            When true the update re-reads the current table contents
            (scenario [A]); when false it uses the possibly stale values
            captured in ``info`` (scenarios [B]/[C] on correct
            predictions), which is exactly what causes the accuracy losses
            quantified in Section 4.1.2.
        """

    def notify_execute(self, pc: int, taken: bool, info: PredictionInfo) -> None:
        """Signal that the branch has executed (resolved) but not yet retired.

        The delayed-update simulator calls this when a branch's outcome
        becomes available in the out-of-order core, before its retire-time
        :meth:`update`.  Predictors augmented with the Immediate Update
        Mimicker (Section 5.1) use this hook to capture the outcome of
        in-flight branches; plain predictors ignore it.
        """

    @abstractmethod
    def storage_report(self) -> StorageReport:
        """Return the per-component storage accounting of the predictor."""

    @property
    def storage_bits(self) -> int:
        """Total storage of the predictor in bits."""
        return self.storage_report().total_bits

    def reset(self) -> None:  # pragma: no cover - overridden where stateful reset matters
        """Restore the predictor to its power-on state (optional override)."""
        raise NotImplementedError(f"{type(self).__name__} does not implement reset()")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}, {self.storage_bits} bits>"
