"""Per-client rate limits and quotas for submissions.

Two independent bounds, both keyed on the authenticated client identity
(:mod:`repro.service.auth`; unauthenticated loopback peers share the
``loopback`` identity):

* a **token bucket** on submissions — ``burst`` tokens, refilled at
  ``rate`` per second, one token per submit.  An empty bucket rejects
  with the exact time until the next token, which the HTTP layer
  serves as ``Retry-After``;
* a **live-job cap** — at most ``max_client_jobs`` queued-or-running
  jobs per client, so one client cannot occupy the whole service queue
  however politely it paces its submits.

Both reject with :class:`RateLimitedError` (HTTP 429).  A ``None``
policy field disables that bound; :meth:`QuotaPolicy.unlimited` is the
default for embedded services (tests, benchmarks), while ``repro
serve`` wires flags/env knobs through.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any

__all__ = ["ClientQuota", "QuotaPolicy", "RateLimitedError"]


class RateLimitedError(RuntimeError):
    """A client exceeded its submit rate or live-job quota (HTTP 429)."""

    def __init__(self, message: str, retry_after: float, code: str = "rate_limited") -> None:
        super().__init__(message)
        #: Seconds until retrying can succeed (the ``Retry-After`` header,
        #: rounded up on the wire).
        self.retry_after = retry_after
        self.code = code


@dataclass(frozen=True)
class QuotaPolicy:
    """Bounds applied per client; ``None`` disables a bound."""

    #: Sustained submissions per second (token-bucket refill rate).
    rate: float | None = None
    #: Bucket capacity: submissions admitted at full speed before the
    #: rate applies.  Ignored when ``rate`` is None.
    burst: int = 10
    #: Maximum queued-or-running jobs one client may hold.
    max_client_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be at least 1, got {self.burst}")
        if self.max_client_jobs is not None and self.max_client_jobs < 1:
            raise ValueError(f"max_client_jobs must be at least 1, got {self.max_client_jobs}")

    @classmethod
    def unlimited(cls) -> "QuotaPolicy":
        return cls()

    @property
    def enforced(self) -> bool:
        return self.rate is not None or self.max_client_jobs is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate_per_second": self.rate,
            "burst": self.burst if self.rate is not None else None,
            "max_client_jobs": self.max_client_jobs,
        }


class ClientQuota:
    """Thread-safe token buckets, one per client identity.

    ``clock`` is injectable for sleep-free tests (same pattern as the
    broker's lease clock).
    """

    def __init__(self, policy: QuotaPolicy, clock=time.monotonic) -> None:
        self.policy = policy
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  # client -> (tokens, stamp)
        self._rejected: dict[str, int] = {}
        self._lock = threading.Lock()

    def admit(self, client: str, live_jobs: int) -> None:
        """Admit one submission or raise :class:`RateLimitedError`.

        ``live_jobs`` is the client's current queued-or-running job
        count (the service counts it under its own lock).
        """
        policy = self.policy
        if policy.max_client_jobs is not None and live_jobs >= policy.max_client_jobs:
            with self._lock:
                self._rejected[client] = self._rejected.get(client, 0) + 1
            raise RateLimitedError(
                f"client {client!r} already has {live_jobs} live jobs "
                f"(limit {policy.max_client_jobs}); wait for one to finish",
                retry_after=1.0,
                code="quota_exceeded",
            )
        if policy.rate is None:
            return
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(client, (float(policy.burst), now))
            tokens = min(float(policy.burst), tokens + (now - stamp) * policy.rate)
            if tokens < 1.0:
                self._buckets[client] = (tokens, now)
                self._rejected[client] = self._rejected.get(client, 0) + 1
                retry_after = (1.0 - tokens) / policy.rate
                raise RateLimitedError(
                    f"client {client!r} exceeded {policy.rate:g} submits/s "
                    f"(burst {policy.burst}); retry in {math.ceil(retry_after)}s",
                    retry_after=retry_after,
                    code="rate_limited",
                )
            self._buckets[client] = (tokens - 1.0, now)

    def stats(self) -> dict[str, Any]:
        """Per-client bucket levels and rejection counts (for ``/v2/stats``)."""
        with self._lock:
            buckets = dict(self._buckets)
            rejected = dict(self._rejected)
        now = self._clock()
        clients: dict[str, Any] = {}
        for client, (tokens, stamp) in buckets.items():
            if self.policy.rate is not None:
                tokens = min(float(self.policy.burst), tokens + (now - stamp) * self.policy.rate)
            clients[client] = {
                "tokens": round(tokens, 3),
                "rejected": rejected.get(client, 0),
            }
        for client, count in rejected.items():
            clients.setdefault(client, {"tokens": None, "rejected": count})
        return {"policy": self.policy.to_dict(), "clients": clients}
