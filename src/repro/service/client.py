"""A small urllib client for the HTTP service (v2 surface).

Used by ``repro submit``, the tests and the throughput benchmark — and a
reasonable starting point for any external caller.  Stdlib only.

Speaks the v2 API: errors arrive in the uniform envelope
(``{"error": {"code", "message", "retry_after?", "trace_id"}}``) and are
surfaced as :class:`ServiceClientError` carrying the machine-readable
``code`` alongside the status; ``token`` adds the ``Authorization:
Bearer`` header required by authenticated deployments.  v1-envelope
bodies (a bare ``{"error": "..."}`` string) are still understood, so
the client keeps working against the deprecation shim too.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Sequence

from repro.api.request import RunRequest
from repro.service.protocol import TERMINAL_STATUSES

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """An HTTP-level failure: status, server message, envelope code."""

    def __init__(self, status: int, message: str, code: str | None = None,
                 retry_after: float | None = None,
                 trace_id: str | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.code = code
        self.retry_after = retry_after
        self.trace_id = trace_id


class ServiceClient:
    """Typed calls against one service base URL (e.g. ``http://127.0.0.1:8321``)."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 token: str | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.token = token

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _call(self, method: str, path: str, payload: Any = None,
              timeout: float | None = None,
              headers: dict[str, str] | None = None, raw: bool = False) -> Any:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request_headers = {"Content-Type": "application/json"} if body else {}
        if self.token:
            request_headers["Authorization"] = f"Bearer {self.token}"
        request_headers.update(headers or {})
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers=request_headers,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                text = response.read().decode("utf-8")
                return text if raw else json.loads(text)
        except urllib.error.HTTPError as error:
            raise self._decode_error(error) from None
        except urllib.error.URLError as error:
            raise ServiceClientError(
                0, f"cannot reach {self.base_url}: {error.reason}") from None

    @staticmethod
    def _decode_error(error: urllib.error.HTTPError) -> ServiceClientError:
        detail = error.read().decode("utf-8", errors="replace")
        code = retry_after = trace_id = None
        try:
            envelope = json.loads(detail).get("error", detail)
        except (json.JSONDecodeError, AttributeError):
            envelope = detail
        if isinstance(envelope, dict):
            # The v2 envelope: code + message + optional retry_after.
            detail = str(envelope.get("message", detail))
            code = envelope.get("code")
            retry_after = envelope.get("retry_after")
            trace_id = envelope.get("trace_id")
        elif isinstance(envelope, str):
            detail = envelope  # v1: {"error": "<message>"}
        return ServiceClientError(
            error.code, detail, code=code, retry_after=retry_after,
            trace_id=trace_id)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._call("GET", "/v2/healthz")

    def stats(self) -> dict:
        return self._call("GET", "/v2/stats")

    def capabilities(self) -> dict:
        """Live backends, lanes, auth mode and limits (``GET /v2/capabilities``)."""
        return self._call("GET", "/v2/capabilities")

    def metrics(self) -> str:
        """The raw Prometheus text served by ``GET /v2/metrics``."""
        return self._call("GET", "/v2/metrics", raw=True)

    def trace(self, trace_id: str) -> dict:
        """One trace's stitched span tree (``GET /v2/traces/{id}``).

        Raises :class:`ServiceClientError` with status 404 when the
        trace was sampled out or has expired from the span store.
        """
        return self._call("GET", f"/v2/traces/{trace_id}")

    def fleet(self) -> dict:
        """The broker's fleet section of ``/v2/stats``.

        Raises :class:`ServiceClientError` (status 0) when the server is
        not running in broker mode — ``repro fleet`` turns that into a
        clear message instead of an empty table.
        """
        stats = self.stats()
        fleet = stats.get("fleet")
        if fleet is None:
            raise ServiceClientError(
                0, f"{self.base_url} is a single-process service (no broker fleet)"
            )
        return fleet

    def runs(self, status: str | None = None, limit: int | None = None,
             cursor: str | None = None) -> dict:
        """One page of the run listing (``GET /v2/runs``).

        Returns ``{"runs": [...], "count": n, "next_cursor": ...}``;
        pass the ``next_cursor`` back to walk further pages.
        """
        params = []
        if status is not None:
            params.append(f"status={status}")
        if limit is not None:
            params.append(f"limit={limit}")
        if cursor is not None:
            params.append(f"cursor={cursor}")
        suffix = f"?{'&'.join(params)}" if params else ""
        return self._call("GET", f"/v2/runs{suffix}")

    def job(self, job_id: str) -> dict:
        return self._call("GET", f"/v2/runs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """DELETE a queued job; returns its cancelled document.

        Raises :class:`ServiceClientError` with status 404 for unknown
        jobs and 409 when the job is already running or terminal.
        """
        return self._call("DELETE", f"/v2/runs/{job_id}")

    def submit(
        self,
        requests: Sequence[RunRequest] | RunRequest | Sequence[dict] | dict,
        wait: bool = False,
        timeout: float | None = None,
        trace_id: str | None = None,
    ) -> dict:
        """POST a submission; returns the job document.

        ``requests`` may be live :class:`RunRequest` objects or
        already-serialized payload dicts; a single request posts an
        object, several post a list (the server preserves the shape in
        the document's ``batch`` flag).  ``trace_id`` travels as the
        ``X-Trace-Id`` header; the server adopts it (or mints one) and
        echoes it in the job document.
        """
        payload = self._submission_payload(requests)
        headers = {"X-Trace-Id": trace_id} if trace_id else None
        if not wait:
            return self._call("POST", "/v2/runs", payload, headers=headers)
        hold = timeout if timeout is not None else 60
        # The transport timeout must outlive the server-side hold we just
        # asked for, or long jobs would abort client-side mid-wait.
        return self._call(
            "POST", f"/v2/runs?wait=1&timeout={hold}", payload,
            timeout=max(self.timeout, hold + 10), headers=headers,
        )

    def poll(self, job_id: str, timeout: float = 60.0, interval: float = 0.05) -> dict:
        """GET the job until it reaches a terminal state (or ``timeout``)."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["status"] in TERMINAL_STATUSES or time.monotonic() >= deadline:
                return document
            time.sleep(interval)

    def run(
        self,
        requests: Sequence[RunRequest] | RunRequest | Sequence[dict] | dict,
        timeout: float = 60.0,
        trace_id: str | None = None,
    ) -> dict:
        """Submit asynchronously, then poll to completion (both endpoints)."""
        document = self.submit(requests, trace_id=trace_id)
        if document["status"] not in TERMINAL_STATUSES:
            document = self.poll(document["id"], timeout=timeout)
        return document

    @staticmethod
    def _submission_payload(
        requests: Sequence[RunRequest] | RunRequest | Sequence[dict] | dict,
    ) -> Any:
        def encode(entry: RunRequest | dict) -> dict:
            return entry.to_dict() if isinstance(entry, RunRequest) else entry

        if isinstance(requests, (RunRequest, dict)):
            return encode(requests)
        entries = [encode(entry) for entry in requests]
        return entries[0] if len(entries) == 1 else entries
