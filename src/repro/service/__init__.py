"""``repro.service`` — the HTTP simulation service.

A stdlib-only front end that turns the serializable run API into a
long-running server: clients ``POST`` :class:`~repro.api.request.RunRequest`
JSON, jobs flow through a bounded in-process queue, and a dispatcher
executes them on a :class:`~repro.api.runner.Runner` in persistent mode —
one long-lived :class:`~repro.pipeline.parallel.WorkerPool` whose workers
keep warm predictor instances, so many small requests never pay process
spawn or predictor construction.

Layers (each usable on its own):

* :mod:`repro.service.protocol` — the job model and submission parsing,
* :mod:`repro.service.store` — pluggable result stores (memory / disk),
* :mod:`repro.service.core` — :class:`SimulationService`: queue,
  dispatcher thread, stats,
* :mod:`repro.service.app` — the ``http.server`` application
  (``POST /v1/runs``, ``GET /v1/runs/<id>``, ``DELETE /v1/runs/<id>``,
  ``GET /v1/healthz``, ``GET /v1/stats``),
* :mod:`repro.service.client` — a urllib client (used by
  ``repro submit`` and the tests).

Start one with ``repro serve`` or::

    from repro.service import SimulationService, serve

    with SimulationService() as service:
        serve(service, host="127.0.0.1", port=8321)

For multi-host deployments, construct the service with a
:mod:`repro.distrib` broker (``repro serve --broker <spec>``): jobs are
published to the broker and executed by a separate ``repro worker``
fleet instead of an in-process runner; ``GET /v1/stats`` then carries a
``fleet`` section with per-worker liveness and throughput.
"""

from repro.service.app import ServiceHTTPServer, make_server, serve
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.core import (
    CancelConflictError,
    QueueFullError,
    ServiceClosedError,
    SimulationService,
    UnknownJobError,
)
from repro.service.protocol import Job, JobStatus, ProtocolError, parse_submission
from repro.service.store import DiskResultStore, MemoryResultStore, ResultStore

__all__ = [
    "CancelConflictError",
    "DiskResultStore",
    "Job",
    "JobStatus",
    "MemoryResultStore",
    "ProtocolError",
    "QueueFullError",
    "ResultStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceClosedError",
    "ServiceHTTPServer",
    "SimulationService",
    "UnknownJobError",
    "make_server",
    "parse_submission",
    "serve",
]
