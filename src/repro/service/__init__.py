"""``repro.service`` — the HTTP simulation service.

A stdlib-only front end that turns the serializable run API into a
long-running server: clients ``POST`` :class:`~repro.api.request.RunRequest`
JSON, jobs flow through bounded in-process queues, and per-lane
dispatchers execute them on :class:`~repro.api.runner.Runner` instances
in persistent mode — long-lived :class:`~repro.pipeline.parallel.WorkerPool`
workers keep warm predictor instances, so many small requests never pay
process spawn or predictor construction.

Layers (each usable on its own):

* :mod:`repro.service.protocol` — the job model and submission parsing,
* :mod:`repro.service.store` — pluggable result stores (memory / disk),
* :mod:`repro.service.quota` — per-client rate limits and job caps,
* :mod:`repro.service.auth` — bearer-token authentication,
* :mod:`repro.service.core` — :class:`SimulationService`: queues,
  priority lanes, dispatcher threads, graceful drain, stats,
* :mod:`repro.service.aio` — the asyncio HTTP/1.1 transport,
* :mod:`repro.service.app` — the application: the current ``/v2/``
  API (error envelope, pagination, capabilities) plus the frozen
  ``/v1/`` deprecation shim,
* :mod:`repro.service.threaded` — the retired ``http.server`` front
  end, kept as the benchmark baseline,
* :mod:`repro.service.client` — a urllib client (used by
  ``repro submit`` and the tests),
* :mod:`repro.service.spec` — the machine-readable endpoint table
  (``python -m repro.service.spec``) CI diffs against the README.

Start one with ``repro serve`` or::

    from repro.service import SimulationService, serve

    with SimulationService() as service:
        serve(service, host="127.0.0.1", port=8321)

For multi-host deployments, construct the service with a
:mod:`repro.distrib` broker (``repro serve --broker <spec>``): jobs are
published to the broker and executed by a separate ``repro worker``
fleet instead of an in-process runner; ``GET /v2/stats`` then carries a
``fleet`` section with per-worker liveness and throughput.
"""

from repro.service.app import ServiceHTTPServer, make_server, serve
from repro.service.auth import AuthError, TokenAuth, is_loopback_host
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.core import (
    CancelConflictError,
    QueueFullError,
    ServiceClosedError,
    SimulationService,
    UnknownJobError,
)
from repro.service.protocol import (
    Job,
    JobStatus,
    ProtocolError,
    estimate_branches,
    parse_submission,
)
from repro.service.quota import ClientQuota, QuotaPolicy, RateLimitedError
from repro.service.store import DiskResultStore, MemoryResultStore, ResultStore
from repro.service.threaded import make_threaded_server

__all__ = [
    "AuthError",
    "CancelConflictError",
    "ClientQuota",
    "DiskResultStore",
    "Job",
    "JobStatus",
    "MemoryResultStore",
    "ProtocolError",
    "QueueFullError",
    "QuotaPolicy",
    "RateLimitedError",
    "ResultStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceClosedError",
    "ServiceHTTPServer",
    "SimulationService",
    "TokenAuth",
    "UnknownJobError",
    "estimate_branches",
    "is_loopback_host",
    "make_server",
    "make_threaded_server",
    "parse_submission",
    "serve",
]
