"""The service job model and wire protocol.

A *job* is one submission: a single :class:`~repro.api.request.RunRequest`
or a batch of them, travelling together through the queue and executed as
one :meth:`~repro.api.runner.Runner.run_batch` call (so identical runs
inside a batch are deduplicated by the scheduler).  The job document —
:meth:`Job.to_dict` — is the single JSON shape served by
``GET /v1/runs/<id>``, returned by ``POST /v1/runs?wait=1`` and persisted
in the result store, so a client never sees different layouts for live
and stored jobs.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.api.request import RunRequest, validate_shard_coverage
from repro.obs import new_trace_id
from repro.predictors.registry import available
from repro.traces.refs import parse_trace_ref

__all__ = [
    "Job",
    "JobStatus",
    "MAX_BATCH_REQUESTS",
    "ProtocolError",
    "TERMINAL_STATUSES",
    "estimate_branches",
    "parse_submission",
]

#: Upper bound on requests per submission: a misbehaving client posting a
#: million-entry batch should get a 400, not wedge the queue for hours.
MAX_BATCH_REQUESTS = 256

_COUNTER = itertools.count(1)


class ProtocolError(ValueError):
    """A malformed submission (maps to HTTP 400).

    Carries a stable machine-readable ``code`` alongside the human
    message: the v2 API's error envelope exposes the code, so clients
    branch on ``invalid_request`` / ``unknown_predictor`` / … instead of
    matching Python exception prose (which is not API).
    """

    def __init__(self, message: str, code: str = "invalid_request") -> None:
        super().__init__(message)
        self.code = code


class JobStatus(enum.Enum):
    """Lifecycle of a job: queued → running → done | failed, or
    queued → cancelled (running jobs cannot be cancelled)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


#: Wire-level terminal status strings — the single source the HTTP wait
#: path, the client's poll loop and the submit CLI all check against.
TERMINAL_STATUSES = frozenset(status.value for status in JobStatus if status.terminal)


def new_job_id() -> str:
    """A unique, filesystem- and URL-safe job id (``job-<seq>-<hex>``)."""
    return f"job-{next(_COUNTER)}-{uuid.uuid4().hex[:8]}"


@dataclass
class Job:
    """One submission moving through the service.

    ``batch`` records whether the client posted a list — it decides
    whether clients unwrapping the document should read ``results`` as a
    list or take its only element, mirroring how ``repro run`` prints
    one payload for one request and a list for several.
    """

    requests: list[RunRequest]
    batch: bool
    id: str = field(default_factory=new_job_id)
    status: JobStatus = JobStatus.QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    results: list[dict] | None = None
    #: Broker-dispatch provenance: the executing fleet worker's id and
    #: how many lease deliveries the job took (1 = no re-delivery).
    #: Both stay ``None`` in single-process mode.
    worker: str | None = None
    attempts: int | None = None
    #: The id that follows this job through logs, broker tickets and
    #: worker execution.  Minted at submission (or adopted from the
    #: client's ``X-Trace-Id`` header / ``--trace-id`` flag).
    trace_id: str = field(default_factory=new_trace_id)
    #: Authenticated client identity (quota accounting) and the lane the
    #: dispatcher routed the job to.  Deliberately NOT part of
    #: :meth:`to_dict`: job documents stay byte-identical whether auth
    #: and lanes are configured or not.
    client: str | None = field(default=None, compare=False)
    lane: str = field(default="default", compare=False)
    #: Root span id of this job's trace tree (``None`` when the trace
    #: lost the sampling draw).  Like ``client``/``lane`` it is NOT part
    #: of :meth:`to_dict`: span data travels through the span store and
    #: ``GET /v2/traces/{id}``, never the job document.
    root_span: str | None = field(default=None, compare=False)
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Completion callbacks (fired once, after the terminal state is
    #: visible); the async front end bridges these onto its event loop.
    #: Appended under the service lock — see ``SimulationService.subscribe``.
    done_callbacks: list = field(default_factory=list, repr=False, compare=False)

    def mark_done(self) -> None:
        """Wake every waiter: the threading event and the subscribed callbacks.

        Call sites guarantee the terminal state (and the store copy) are
        already visible.  Callbacks must not raise; a failed bridge into
        a dead event loop must not take the dispatcher thread with it.
        """
        self.done_event.set()
        for callback in self.done_callbacks:
            try:
                callback()
            except Exception:  # noqa: BLE001 - waiter bridges must not kill dispatch
                pass

    def to_dict(self) -> dict[str, Any]:
        """The job document (JSON-pure, identical live and from a store)."""
        return {
            "id": self.id,
            "status": self.status.value,
            "batch": self.batch,
            "requests": [request.to_dict() for request in self.requests],
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "results": self.results,
            "worker": self.worker,
            "attempts": self.attempts,
            "trace_id": self.trace_id,
        }


def parse_submission(payload: Any) -> tuple[list[RunRequest], bool]:
    """Parse a ``POST /v1/runs`` body into requests.

    Accepts one request object or a non-empty list of at most
    :data:`MAX_BATCH_REQUESTS`; anything else (including invalid
    individual requests — unknown keys, bad scenarios, unparsable trace
    references, unregistered predictor kinds) raises
    :class:`ProtocolError` naming the offending entry.  Kind validation
    happens here, at submission time, so a typo is a 400 at the door
    rather than a failed job minutes later.  (Config *values* are only
    checked by the factory at execution; a bad config still fails the
    job, not the service.)
    """
    if isinstance(payload, Sequence) and not isinstance(payload, (str, bytes)):
        entries = list(payload)
        if not entries:
            raise ProtocolError(
                "batch submission must contain at least one request",
                code="empty_batch",
            )
        if len(entries) > MAX_BATCH_REQUESTS:
            raise ProtocolError(
                f"batch of {len(entries)} requests exceeds the limit of {MAX_BATCH_REQUESTS}",
                code="batch_too_large",
            )
        batch = True
    elif isinstance(payload, Mapping):
        entries = [payload]
        batch = False
    else:
        raise ProtocolError(
            f"submission must be a run request object or a list of them, "
            f"got {type(payload).__name__}",
            code="invalid_submission",
        )
    requests = []
    kinds = None
    for index, entry in enumerate(entries):
        where = f"request {index}" if batch else "request"
        try:
            request = RunRequest.from_dict(entry)
        except (ValueError, KeyError, TypeError) as error:
            message = error.args[0] if error.args else error
            raise ProtocolError(f"{where}: {message}", code="invalid_request") from None
        if kinds is None:
            kinds = set(available())
        if request.predictor.kind not in kinds:
            raise ProtocolError(
                f"{where}: unknown predictor kind {request.predictor.kind!r}; "
                f"registered kinds: {available()}",
                code="unknown_predictor",
            )
        requests.append(request)
    try:
        # Duplicate or overlapping shard submissions in one batch would
        # merge into a silently wrong sum — reject them at the door.
        validate_shard_coverage(requests)
    except ValueError as error:
        raise ProtocolError(str(error), code="shard_conflict") from None
    return requests, batch


def estimate_branches(requests: Sequence[RunRequest]) -> int:
    """Estimated total simulated branches across a job's requests.

    Trace references carry their length as parameters, so the estimate
    needs no trace resolution and is exact for every built-in scheme.
    The service's priority lanes use it to keep interactive submissions
    out of the shadow of fig10-sized batches.
    """
    return sum(parse_trace_ref(request.trace).branch_estimate for request in requests)
