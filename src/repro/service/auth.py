"""Token authentication for the HTTP front end.

The service authenticates with static bearer tokens, each mapped to a
*client identity* that quota accounting and the per-client sections of
``/v2/stats`` key on.  Tokens come from two places (merged; the file
wins on conflicts):

* ``REPRO_SERVICE_TOKENS`` — comma-separated ``client=token`` pairs
  (a bare ``token`` gets a derived ``token-<hash>`` identity),
* ``repro serve --token-file FILE`` — one entry per line, same syntax,
  ``#`` comments and blank lines ignored.

Policy: when tokens are configured, any request may authenticate with
``Authorization: Bearer <token>`` — comparison is constant-time
(:func:`hmac.compare_digest`), and presenting an *invalid* token is
always a 401, even from loopback.  Requests without a token are only
admitted from loopback peers (identity ``loopback``); everyone else
gets 401.  ``repro serve`` refuses to bind a non-loopback address with
no tokens configured, so an open-to-the-network deployment cannot be
created by accident.
"""

from __future__ import annotations

import hashlib
import hmac
import ipaddress
import os

__all__ = [
    "ANONYMOUS_CLIENT",
    "AuthError",
    "ENV_TOKENS",
    "LOOPBACK_CLIENT",
    "TokenAuth",
    "is_loopback_host",
]

ENV_TOKENS = "REPRO_SERVICE_TOKENS"

#: Identity of unauthenticated loopback peers (the local-dev exemption).
LOOPBACK_CLIENT = "loopback"
#: Identity used when no authenticator is configured at all.
ANONYMOUS_CLIENT = "anonymous"


class AuthError(RuntimeError):
    """Authentication failed (maps to HTTP 401)."""


def is_loopback_host(host: str) -> bool:
    """True for addresses that only loopback peers can connect from."""
    if host in ("localhost", ""):
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


def _parse_entry(entry: str, where: str) -> tuple[str, str]:
    """``client=token`` (or bare ``token``) → ``(client, token)``."""
    entry = entry.strip()
    client, sep, token = entry.partition("=")
    if not sep:
        token = entry
        client = f"token-{hashlib.sha256(token.encode('utf-8')).hexdigest()[:8]}"
    client, token = client.strip(), token.strip()
    if not token or not client:
        raise ValueError(f"{where}: malformed token entry {entry!r} (expected client=token)")
    return client, token


class TokenAuth:
    """Static bearer tokens mapped to client identities."""

    def __init__(self, tokens: dict[str, str], allow_loopback: bool = True) -> None:
        """``tokens`` maps *token* -> *client identity*."""
        if not tokens:
            raise ValueError("TokenAuth needs at least one token")
        self._tokens = dict(tokens)
        self.allow_loopback = allow_loopback

    @classmethod
    def from_sources(
        cls,
        env_value: str | None = None,
        token_file: str | None = None,
        allow_loopback: bool = True,
    ) -> "TokenAuth | None":
        """Build from the environment and/or a token file; ``None`` if neither
        yields a token (auth disabled)."""
        if env_value is None:
            env_value = os.environ.get(ENV_TOKENS)
        tokens: dict[str, str] = {}
        if env_value:
            for entry in env_value.split(","):
                if entry.strip():
                    client, token = _parse_entry(entry, ENV_TOKENS)
                    tokens[token] = client
        if token_file:
            with open(token_file, "r", encoding="utf-8") as handle:
                for number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    client, token = _parse_entry(line, f"{token_file}:{number}")
                    tokens[token] = client
        if not tokens:
            return None
        return cls(tokens, allow_loopback=allow_loopback)

    @property
    def clients(self) -> list[str]:
        return sorted(set(self._tokens.values()))

    def identify(self, token: str | None, peer_host: str | None) -> str:
        """Resolve a request to a client identity or raise :class:`AuthError`.

        ``token`` is the bearer credential (``None`` when absent);
        ``peer_host`` the connecting address.  Every configured token is
        compared in constant time, match or not, so timing never leaks
        which prefix of a token was right.
        """
        if token is not None:
            found: str | None = None
            for candidate, client in self._tokens.items():
                if hmac.compare_digest(candidate.encode("utf-8"), token.encode("utf-8")):
                    found = client
            if found is None:
                raise AuthError("invalid token")
            return found
        if self.allow_loopback and peer_host is not None and is_loopback_host(peer_host):
            return LOOPBACK_CLIENT
        raise AuthError("authentication required: send 'Authorization: Bearer <token>'")
