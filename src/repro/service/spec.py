"""The machine-readable HTTP API surface, and the README drift check.

One list of endpoint rows is the single source of truth for the v2 API
table.  ``python -m repro.service.spec`` prints it as the exact
markdown block the README embeds between ``<!-- endpoints:begin -->``
and ``<!-- endpoints:end -->`` markers; ``python -m repro.service.spec
--check README.md`` exits non-zero when the two disagree — CI runs the
check so the documented surface cannot rot away from the implemented
one.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

__all__ = ["ENDPOINTS", "Endpoint", "render_table"]

BEGIN_MARKER = "<!-- endpoints:begin -->"
END_MARKER = "<!-- endpoints:end -->"


@dataclass(frozen=True)
class Endpoint:
    method: str
    path: str
    summary: str


#: The implemented surface, in routing order.  Keep in sync with
#: :mod:`repro.service.app` — a new route lands here and in the README
#: (via ``--check``) in the same change.
ENDPOINTS = (
    Endpoint("POST", "/v2/runs",
             "Submit one request or a batch; `202` + `Location`. "
             "`?wait=1&timeout=S` holds until terminal (`200`) or timeout (`202`)."),
    Endpoint("GET", "/v2/runs",
             "List known runs; `?status=&limit=&cursor=` paginates newest-first."),
    Endpoint("GET", "/v2/runs/{id}",
             "One job document (live or stored); `404` for unknown ids."),
    Endpoint("DELETE", "/v2/runs/{id}",
             "Cancel a queued job (`200`); `409` once running or terminal."),
    Endpoint("GET", "/v2/capabilities",
             "Live backends, lanes, auth mode, limits, server version."),
    Endpoint("GET", "/v2/healthz",
             "Liveness probe (auth-exempt); includes drain state."),
    Endpoint("GET", "/v2/stats",
             "Queue, lane, client-quota, pool and cache statistics."),
    Endpoint("GET", "/v2/metrics",
             "Prometheus text exposition (includes fleet snapshots)."),
    Endpoint("GET", "/v2/traces/{id}",
             "One trace's stitched span tree (flat spans + nested tree); "
             "`404` when unsampled or expired."),
    Endpoint("*", "/v1/...",
             "Deprecated shim: original endpoints, byte-identical bodies, "
             "`Deprecation: true` header."),
)


def render_table() -> str:
    """The endpoint table as README-embeddable GitHub markdown."""
    lines = ["| Method | Path | Description |", "| --- | --- | --- |"]
    for endpoint in ENDPOINTS:
        lines.append(
            f"| `{endpoint.method}` | `{endpoint.path}` | {endpoint.summary} |")
    return "\n".join(lines)


def _extract_readme_table(text: str) -> str | None:
    try:
        start = text.index(BEGIN_MARKER) + len(BEGIN_MARKER)
        end = text.index(END_MARKER, start)
    except ValueError:
        return None
    return text[start:end].strip()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.spec",
        description="Dump the HTTP endpoint table, or diff it against the README.",
    )
    parser.add_argument(
        "--check", metavar="README",
        help=f"verify the table between {BEGIN_MARKER!r} and {END_MARKER!r} "
             f"in this file matches the implementation",
    )
    args = parser.parse_args(argv)
    table = render_table()
    if args.check is None:
        print(table)
        return 0
    with open(args.check, "r", encoding="utf-8") as handle:
        documented = _extract_readme_table(handle.read())
    if documented is None:
        print(f"{args.check}: endpoint markers not found "
              f"({BEGIN_MARKER} ... {END_MARKER})", file=sys.stderr)
        return 1
    if documented != table:
        print(f"{args.check}: endpoint table is out of date; "
              f"regenerate with 'python -m repro.service.spec':",
              file=sys.stderr)
        import difflib
        for line in difflib.unified_diff(
                documented.splitlines(), table.splitlines(),
                fromfile="README", tofile="implementation", lineterm=""):
            print(line, file=sys.stderr)
        return 1
    print(f"{args.check}: endpoint table matches the implementation")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
