"""The original ``http.server``-based front end, kept as a baseline.

This is the threaded application :mod:`repro.service.app` replaced: a
:class:`ThreadingHTTPServer` where every connection — including every
idle ``?wait=1`` long-poll — costs one OS thread, and where a large
batch executing in the single dispatch lane head-of-line-blocks every
interactive submission behind it.

It stays in the tree for one purpose: ``bench_service_throughput.py``
measures the async+lanes server *against* this baseline, which keeps
the claimed latency win honest and regression-gated.  It serves only
the v1 surface and receives no new features.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

import repro
from repro.service.core import (
    CancelConflictError,
    QueueFullError,
    ServiceClosedError,
    SimulationService,
    UnknownJobError,
)
from repro.service.protocol import TERMINAL_STATUSES, ProtocolError

__all__ = ["ThreadedServiceHTTPServer", "make_threaded_server"]

#: Default/ceiling for the synchronous ``?wait=1`` hold, seconds.
DEFAULT_WAIT_TIMEOUT = 60.0
MAX_WAIT_TIMEOUT = 600.0
#: Submission bodies above this are rejected unread (413).
MAX_BODY_BYTES = 8 * 1024 * 1024

_TRUTHY = {"1", "true", "yes", "on"}


class ThreadedServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SimulationService,
                 quiet: bool = True) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ThreadedServiceHTTPServer
    server_version = f"repro-service/{repro.__version__}"
    # HTTP/1.1 keep-alive: every response below carries Content-Length.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, code: int, payload: dict, headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set when the request body was not consumed (oversize/absent):
            # advertise the close instead of silently dropping keep-alive.
            self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, headers: dict[str, str] | None = None) -> None:
        self._reply(code, {"error": message}, headers)

    def _reply_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query(self) -> dict[str, str]:
        query = parse_qs(urlsplit(self.path).query)
        return {key: values[-1] for key, values in query.items()}

    def _path(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self._path()
        service = self.server.service
        if path == "/v1/healthz":
            self._reply(200, {
                "status": "ok",
                "version": repro.__version__,
                **service.health(),
            })
        elif path == "/v1/stats":
            self._reply(200, service.stats())
        elif path == "/v1/metrics":
            self._reply_text(
                200, service.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8")
        elif path.startswith("/v1/runs/"):
            job_id = path[len("/v1/runs/"):]
            if "/" in job_id or not job_id:
                self._error(404, f"no such resource {path!r}")
                return
            try:
                self._reply(200, service.job(job_id))
            except UnknownJobError:
                self._error(404, f"unknown job {job_id!r}")
        else:
            self._error(404, f"no such resource {path!r}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        path = self._path()
        if not path.startswith("/v1/runs/"):
            self._error(404, f"no such resource {path!r}")
            return
        job_id = path[len("/v1/runs/"):]
        if "/" in job_id or not job_id:
            self._error(404, f"no such resource {path!r}")
            return
        try:
            self._reply(200, self.server.service.cancel(job_id))
        except UnknownJobError:
            self._error(404, f"unknown job {job_id!r}")
        except CancelConflictError as error:
            self._error(409, str(error))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self._path()
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if path != "/v1/runs" or not (0 < length <= MAX_BODY_BYTES):
            # Replying without consuming the body would leave it in the
            # socket for the next keep-alive request to parse as garbage.
            self.close_connection = True
        if path != "/v1/runs":
            self._error(404, f"no such resource {path!r}")
            return
        if length < 0:
            self._error(400, "invalid Content-Length")
            return
        if length == 0:
            self._error(400, "request body required")
            return
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._error(400, f"invalid JSON body: {error}")
            return

        service = self.server.service
        try:
            job = service.submit_payload(
                payload, trace_id=self.headers.get("X-Trace-Id"))
        except ProtocolError as error:
            self._error(400, str(error))
            return
        except QueueFullError as error:
            self._error(503, str(error), headers={"Retry-After": "1"})
            return
        except ServiceClosedError as error:
            self._error(503, str(error))
            return

        query = self._query()
        location = {"Location": f"/v1/runs/{job.id}", "X-Trace-Id": job.trace_id}
        if query.get("wait", "").lower() in _TRUTHY:
            try:
                timeout = float(query.get("timeout", DEFAULT_WAIT_TIMEOUT))
            except ValueError:
                timeout = DEFAULT_WAIT_TIMEOUT
            timeout = max(0.0, min(timeout, MAX_WAIT_TIMEOUT))
            document = service.wait(job.id, timeout=timeout)
            finished = document["status"] in TERMINAL_STATUSES
            self._reply(200 if finished else 202, document, location)
        else:
            self._reply(202, job.to_dict(), location)


def make_threaded_server(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadedServiceHTTPServer:
    """Bind (but do not run) the baseline server; ``port=0`` picks a free port."""
    return ThreadedServiceHTTPServer((host, port), service, quiet=quiet)
