"""Pluggable result stores for finished jobs.

The service keeps only *live* (queued/running) jobs in its own tables;
once a job reaches a terminal state its document moves into a
:class:`ResultStore`.  Two implementations ship:

* :class:`MemoryResultStore` — a locked dict; results live and die with
  the process (the default for ``repro serve``),
* :class:`DiskResultStore` — one JSON file per job with the same
  atomic-replace discipline as :class:`~repro.pipeline.parallel.SuiteCache`,
  so documents survive restarts and a crashed writer never leaves a
  half-written file for readers.

Both are safe to call from the dispatcher thread and HTTP handler
threads concurrently.
"""

from __future__ import annotations

import json
import os
import re
import threading
from typing import Any

__all__ = ["DiskResultStore", "MemoryResultStore", "ResultStore"]

_SAFE_ID = re.compile(r"^[A-Za-z0-9._-]+$")


class ResultStore:
    """Interface: terminal job documents keyed by job id."""

    def put(self, job_id: str, document: dict[str, Any]) -> None:
        raise NotImplementedError

    def put_new(self, job_id: str, document: dict[str, Any]) -> bool:
        """Store only if absent; ``True`` when this call created the entry.

        The distributed path needs first-write-wins: several front ends
        (or a watcher re-observing a terminal broker job) may hand the
        same finished document to one shared store, and the first copy
        must not be clobbered.  The base implementation is
        check-then-put; subclasses with real concurrency override it
        with an atomic primitive.
        """
        if self.get(job_id) is not None:
            return False
        self.put(job_id, document)
        return True

    def get(self, job_id: str) -> dict[str, Any] | None:
        raise NotImplementedError

    def documents(self) -> list[dict[str, Any]]:
        """A snapshot of every stored document (unspecified order).

        Powers the ``/v2/runs`` listing and drain recovery — a restarted
        service scans for ``status == "queued"`` markers left by a
        graceful drain and re-adopts them.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        return {"kind": type(self).__name__, "entries": len(self)}


class MemoryResultStore(ResultStore):
    """In-process store; optionally bounded (oldest insertions dropped)."""

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self.max_entries = max_entries
        self._documents: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()

    def put(self, job_id: str, document: dict[str, Any]) -> None:
        with self._lock:
            self._documents[job_id] = document
            while self.max_entries is not None and len(self._documents) > self.max_entries:
                self._documents.pop(next(iter(self._documents)))

    def put_new(self, job_id: str, document: dict[str, Any]) -> bool:
        with self._lock:
            if job_id in self._documents:
                return False
            self._documents[job_id] = document
            while self.max_entries is not None and len(self._documents) > self.max_entries:
                self._documents.pop(next(iter(self._documents)))
            return True

    def get(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            return self._documents.get(job_id)

    def documents(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._documents.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)


class DiskResultStore(ResultStore):
    """One ``<job-id>.json`` per document, written atomically.

    Job ids are validated against a conservative character set before
    touching the filesystem, so a hostile id can never escape the store
    directory.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()

    def _path(self, job_id: str) -> str:
        if not _SAFE_ID.match(job_id):
            raise ValueError(f"invalid job id {job_id!r}")
        return os.path.join(self.directory, f"{job_id}.json")

    def put(self, job_id: str, document: dict[str, Any]) -> None:
        path = self._path(job_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with self._lock:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(tmp, path)

    def put_new(self, job_id: str, document: dict[str, Any]) -> bool:
        # os.link refuses to overwrite, so first-write-wins holds across
        # *processes* sharing the directory, not just threads — which is
        # the N-front-ends/one-store deployment this store exists for.
        path = self._path(job_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with self._lock:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            try:
                os.link(tmp, path)
                return True
            except FileExistsError:
                return False
            finally:
                os.unlink(tmp)

    def get(self, job_id: str) -> dict[str, Any] | None:
        try:
            path = self._path(job_id)
        except ValueError:
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def documents(self) -> list[dict[str, Any]]:
        try:
            names = sorted(
                name for name in os.listdir(self.directory) if name.endswith(".json")
            )
        except OSError:
            return []
        documents = []
        for name in names:
            try:
                with open(os.path.join(self.directory, name), "r", encoding="utf-8") as handle:
                    documents.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                continue  # a concurrent writer or deleted file; skip it
        return documents

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))
        except OSError:
            return 0

    def stats(self) -> dict[str, Any]:
        stats = super().stats()
        stats["directory"] = self.directory
        return stats
