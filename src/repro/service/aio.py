"""A minimal asyncio HTTP/1.1 server on stdlib streams.

``http.server`` gave the service one thread per connection, which made
long-poll waiting (``POST /v?/runs?wait=1``) cost a thread per idle
client.  This module replaces the transport with ``asyncio`` streams —
one coroutine per connection — while keeping the exact thread-facing
facade the rest of the code base drives
(:meth:`AsyncHTTPServer.serve_forever` / :meth:`~AsyncHTTPServer.shutdown`
/ :meth:`~AsyncHTTPServer.server_close`, socket bound in the
constructor so ``port=0`` resolves immediately).

The parser is deliberately small and deliberately strict:

* request line and header lines are size-capped, the header count is
  capped, and the whole head must arrive within ``header_timeout``
  seconds — a slow-loris connection is dropped with a 408 instead of
  holding memory forever;
* bodies are read only up to a declared, sane ``Content-Length``;
  ``Transfer-Encoding: chunked`` is rejected cleanly (the service's
  JSON submissions have no use for it) and oversized or unparsable
  lengths are surfaced to the application as a *body issue* rather
  than handled here, because the two API generations render the same
  defect differently (v1 replies with its historical plain-text
  bodies, v2 with the error envelope);
* keep-alive and pipelining work the obvious way: the connection
  coroutine loops, and any request that leaves unread bytes on the
  socket forces ``Connection: close`` so a later request can never
  parse a stale body as its head.

The application is one ``async handler(request) -> HTTPResponse``
callable; parse-level failures are rendered through a pluggable
``error_renderer`` so the application controls the error body shape.
"""

from __future__ import annotations

import asyncio
import contextlib
import email.utils
import json
import logging
import socket
import threading
from dataclasses import dataclass, field
from http.client import responses as _REASONS
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

import repro
from repro.obs import get_logger, log_event

__all__ = [
    "AsyncHTTPServer",
    "HTTPRequest",
    "HTTPResponse",
    "MAX_BODY_BYTES",
    "MAX_HEADER_COUNT",
    "MAX_LINE_BYTES",
]

_LOG = get_logger("service.http")

#: Submission bodies above this are rejected unread (413).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Longest accepted request line or single header line, bytes.
MAX_LINE_BYTES = 8190
#: Most header lines accepted on one request.
MAX_HEADER_COUNT = 100
#: Seconds the complete request head must arrive within (slow-loris cap);
#: also the keep-alive idle timeout between pipelined requests.
DEFAULT_HEADER_TIMEOUT = 30.0
#: Seconds a declared body must arrive within once the head is read.
DEFAULT_BODY_TIMEOUT = 60.0

_SERVER = f"repro-service/{repro.__version__}"


@dataclass
class HTTPRequest:
    """One parsed request, body included (or its defect)."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    peer_host: str
    version: str
    #: ``None`` when the body was read cleanly; otherwise one of
    #: ``"bad_length"`` (unparsable/negative ``Content-Length``),
    #: ``"too_large"`` (declared length over the cap, body unread) or
    #: ``"chunked"`` (``Transfer-Encoding`` present).  The connection
    #: always closes after a body issue.
    body_issue: str | None = None
    #: The declared ``Content-Length`` (−1 when unparsable, 0 when absent).
    declared_length: int = 0

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)


@dataclass
class HTTPResponse:
    """What the handler returns; the server adds framing headers."""

    status: int
    body: bytes
    headers: list[tuple[str, str]] = field(default_factory=list)
    #: Force ``Connection: close`` after this response.
    close: bool = False

    @classmethod
    def json(cls, status: int, payload: Any,
             headers: dict[str, str] | None = None,
             close: bool = False) -> "HTTPResponse":
        pairs = [("Content-Type", "application/json")]
        pairs.extend((headers or {}).items())
        return cls(status, json.dumps(payload).encode("utf-8"), pairs, close)

    @classmethod
    def text(cls, status: int, text: str, content_type: str,
             headers: dict[str, str] | None = None) -> "HTTPResponse":
        pairs = [("Content-Type", content_type)]
        pairs.extend((headers or {}).items())
        return cls(status, text.encode("utf-8"), pairs)


@dataclass
class _Failure:
    """A request that never became an :class:`HTTPRequest`."""

    status: int
    code: str
    message: str


def _default_renderer(status: int, code: str, message: str) -> HTTPResponse:
    return HTTPResponse.json(
        status, {"error": {"code": code, "message": message}}, close=True)


class AsyncHTTPServer:
    """One listening socket, one event loop, one coroutine per connection.

    The constructor *binds* (so ``port=0`` resolves to a real port right
    away); :meth:`serve_forever` runs the event loop in the calling
    thread until :meth:`shutdown` is called from any other thread —
    the same contract as ``http.server``, which lets every existing
    test/bench/CLI call site drive this server unchanged.
    """

    def __init__(
        self,
        handler: Callable[[HTTPRequest], Awaitable[HTTPResponse]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = MAX_BODY_BYTES,
        max_line_bytes: int = MAX_LINE_BYTES,
        max_header_count: int = MAX_HEADER_COUNT,
        header_timeout: float = DEFAULT_HEADER_TIMEOUT,
        body_timeout: float = DEFAULT_BODY_TIMEOUT,
        error_renderer: Callable[[int, str, str], HTTPResponse] | None = None,
        quiet: bool = True,
    ) -> None:
        self.handler = handler
        self.max_body_bytes = max_body_bytes
        self.max_line_bytes = max_line_bytes
        self.max_header_count = max_header_count
        self.header_timeout = header_timeout
        self.body_timeout = body_timeout
        self.error_renderer = error_renderer or _default_renderer
        self.quiet = quiet
        self._sock = socket.create_server((host, port), backlog=128)
        self._sock.setblocking(False)
        self.server_address = self._sock.getsockname()[:2]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self._started = threading.Event()
        self._finished = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------
    # Thread-facing lifecycle (the http.server facade)
    # ------------------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    @property
    def open_connections(self) -> int:
        return len(self._connections)

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown`; blocks the caller."""
        try:
            asyncio.run(self._main())
        finally:
            self._finished.set()

    def shutdown(self, timeout: float | None = 10.0) -> None:
        """Stop ``serve_forever`` from another thread and wait for it."""
        if not self._started.wait(timeout=0.001) and not self._finished.is_set():
            # serve_forever may be mid-startup in its thread: give it a
            # moment to reach the running state before signalling.
            self._started.wait(timeout=5.0)
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)
        self._finished.wait(timeout=timeout)

    def server_close(self) -> None:
        """Release the listening socket (idempotent)."""
        self._closed = True
        with contextlib.suppress(OSError):
            self._sock.close()

    # ------------------------------------------------------------------
    # Event-loop side
    # ------------------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, sock=self._sock,
            limit=max(self.max_line_bytes * 4, 65536))
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            with contextlib.suppress(OSError):
                await server.wait_closed()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) and peer else ""
        try:
            while True:
                outcome = await self._read_request(reader, writer, peer_host)
                if outcome is None:
                    break  # clean EOF between requests
                if isinstance(outcome, _Failure):
                    response = self.error_renderer(
                        outcome.status, outcome.code, outcome.message)
                    response.close = True
                    await self._write_response(writer, response, "HEAD-less")
                    break
                request = outcome
                try:
                    response = await self.handler(request)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - a handler fault must not kill the loop
                    log_event(_LOG, logging.ERROR, "handler crashed",
                              method=request.method, path=request.path,
                              error=repr(error))
                    response = self.error_renderer(
                        500, "internal_error", "internal server error")
                    response.close = True
                close = (
                    response.close
                    or request.body_issue is not None
                    or request.version == "HTTP/1.0"
                    or (request.header("connection") or "").lower() == "close"
                )
                response.close = close
                await self._write_response(writer, response, request.method)
                if not self.quiet:
                    log_event(_LOG, logging.INFO, "request",
                              method=request.method, path=request.path,
                              status=response.status, peer=peer_host)
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown cancelled us mid-request
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        peer_host: str,
    ) -> "HTTPRequest | _Failure | None":
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.header_timeout

        async def read_line() -> bytes | None:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError
            try:
                return await asyncio.wait_for(
                    reader.readuntil(b"\n"), timeout=remaining)
            except asyncio.IncompleteReadError as eof:
                if not eof.partial:
                    return None
                raise

        # -- request line ----------------------------------------------
        try:
            raw = await read_line()
        except asyncio.TimeoutError:
            return _Failure(408, "header_timeout",
                            f"request head not received within "
                            f"{self.header_timeout:g}s")
        except asyncio.IncompleteReadError:
            return _Failure(400, "truncated_request",
                            "connection closed mid request line")
        except asyncio.LimitOverrunError:
            return _Failure(414, "uri_too_long", "request line too long")
        if raw is None:
            return None
        if len(raw) > self.max_line_bytes:
            return _Failure(414, "uri_too_long",
                            f"request line exceeds {self.max_line_bytes} bytes")
        parts = raw.decode("latin-1").rstrip("\r\n").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return _Failure(400, "malformed_request",
                            "request line is not 'METHOD TARGET HTTP/x.y'")
        method, target, version = parts
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            return _Failure(505, "http_version_not_supported",
                            f"unsupported protocol version {version}")

        # -- headers ---------------------------------------------------
        headers: dict[str, str] = {}
        count = 0
        while True:
            try:
                raw = await read_line()
            except asyncio.TimeoutError:
                return _Failure(408, "header_timeout",
                                f"request head not received within "
                                f"{self.header_timeout:g}s")
            except asyncio.IncompleteReadError:
                return _Failure(400, "truncated_headers",
                                "connection closed mid headers")
            except asyncio.LimitOverrunError:
                return _Failure(431, "header_too_large", "header line too long")
            if raw is None:
                return _Failure(400, "truncated_headers",
                                "connection closed mid headers")
            if raw in (b"\r\n", b"\n"):
                break
            if len(raw) > self.max_line_bytes:
                return _Failure(431, "header_too_large",
                                f"header line exceeds {self.max_line_bytes} bytes")
            count += 1
            if count > self.max_header_count:
                return _Failure(431, "too_many_headers",
                                f"more than {self.max_header_count} headers")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep or not name.strip():
                return _Failure(400, "malformed_header",
                                f"malformed header line {raw!r}")
            headers[name.strip().lower()] = value.strip()

        split = urlsplit(target)
        query = {key: values[-1]
                 for key, values in parse_qs(split.query).items()}
        request = HTTPRequest(
            method=method, target=target, path=split.path, query=query,
            headers=headers, body=b"", peer_host=peer_host, version=version)

        # -- body ------------------------------------------------------
        encoding = headers.get("transfer-encoding", "")
        if encoding and encoding.lower() != "identity":
            request.body_issue = "chunked"
            return request
        declared = headers.get("content-length")
        if declared is None:
            return request
        try:
            length = int(declared)
            if length < 0:
                raise ValueError(declared)
        except ValueError:
            request.body_issue = "bad_length"
            request.declared_length = -1
            return request
        request.declared_length = length
        if length == 0:
            return request
        if length > self.max_body_bytes:
            # Unread on purpose: draining 8 MiB+ to politely keep the
            # connection alive is a free amplification lever.
            request.body_issue = "too_large"
            return request
        if (headers.get("expect") or "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        try:
            request.body = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.body_timeout)
        except asyncio.IncompleteReadError:
            return _Failure(400, "truncated_body",
                            f"connection closed {length} bytes short of "
                            f"the declared body")
        except asyncio.TimeoutError:
            return _Failure(408, "body_timeout",
                            f"declared body not received within "
                            f"{self.body_timeout:g}s")
        return request

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: HTTPResponse, method: str) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Server: {_SERVER}",
            f"Date: {email.utils.formatdate(usegmt=True)}",
        ]
        lines.extend(f"{name}: {value}" for name, value in response.headers)
        lines.append(f"Content-Length: {len(response.body)}")
        if response.close:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head if method == "HEAD" else head + response.body)
        await writer.drain()
