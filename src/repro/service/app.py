"""The HTTP application over :class:`SimulationService` — asyncio edition.

Stdlib only, no frameworks: the transport is
:class:`~repro.service.aio.AsyncHTTPServer` (one coroutine per
connection), so thousands of idle ``?wait=1`` long-polls cost an
``asyncio.Event`` each instead of a thread.  Job completion wakes
waiters through :meth:`SimulationService.subscribe` callbacks bridged
onto the event loop with ``loop.call_soon_threadsafe``.

Two API generations share one router:

**v2** (current) — uniform JSON error envelope
``{"error": {"code", "message", "retry_after?", "trace_id"}}`` on every
non-2xx, paginated run listing, capability discovery:

=================================  ==========================================
``POST /v2/runs``                  submit; ``202`` + ``Location``
                                   (``?wait=1&timeout=S`` holds: ``200``
                                   terminal / ``202`` on timeout)
``GET /v2/runs``                   list known runs:
                                   ``?status=&limit=&cursor=``
``GET /v2/runs/<id>``              one job document
``DELETE /v2/runs/<id>``           cancel a queued job
``GET /v2/capabilities``           backends, lanes, auth mode, limits
``GET /v2/healthz``                liveness (+ drain state)
``GET /v2/stats``                  queue/lane/client/pool statistics
``GET /v2/metrics``                Prometheus text exposition
``GET /v2/traces/<id>``            one trace's stitched span tree
=================================  ==========================================

**v1** (deprecated shim) — the original endpoints with responses
byte-identical to the threaded server, plus a ``Deprecation: true``
header.  New clients should use v2; v1 exists so deployed scripts keep
working unchanged.

Auth: when a :class:`~repro.service.auth.TokenAuth` is configured,
every endpoint except ``*/healthz`` requires ``Authorization: Bearer
<token>`` (unauthenticated loopback peers are exempt unless disabled).
``open_metrics=True`` (``repro serve --open-metrics`` /
``REPRO_SERVICE_OPEN_METRICS=1``) additionally exempts the two
Prometheus endpoints so a scraper needs no credentials — a deliberate
trade-off that exposes operational counters (never results) to anyone
who can reach the port; the default keeps them locked.
The token's client identity keys per-client quotas
(:mod:`repro.service.quota`) — over-limit submits get ``429`` with
``Retry-After``.

Graceful drain: once :meth:`SimulationService.begin_drain` runs, new
submissions get ``503`` with ``Connection: close`` while reads and
waits keep working, so a load balancer can rotate the instance out
without failing in-flight clients.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import contextlib
import json
import math
from typing import Any

import repro
from repro.obs import build_tree, ensure_trace_id, get_metrics, new_trace_id
from repro.predictors.registry import available
from repro.service.aio import (
    MAX_BODY_BYTES,
    AsyncHTTPServer,
    HTTPRequest,
    HTTPResponse,
)
from repro.service.auth import ANONYMOUS_CLIENT, AuthError, TokenAuth
from repro.service.core import (
    CancelConflictError,
    QueueFullError,
    ServiceClosedError,
    SimulationService,
    UnknownJobError,
)
from repro.service.protocol import (
    MAX_BATCH_REQUESTS,
    TERMINAL_STATUSES,
    JobStatus,
    ProtocolError,
)
from repro.service.quota import RateLimitedError

__all__ = ["ServiceHTTPServer", "make_server", "serve"]

#: Default/ceiling for the synchronous ``?wait=1`` hold, seconds.
DEFAULT_WAIT_TIMEOUT = 60.0
MAX_WAIT_TIMEOUT = 600.0

_TRUTHY = {"1", "true", "yes", "on"}

#: The frozen ``/v1/stats`` key set (and order): the deprecation shim
#: must not grow keys as the service does, or v1 bodies stop being
#: byte-identical to the threaded server's.
_V1_STATS_KEYS = (
    "uptime_seconds", "mode", "queue", "jobs", "dispatcher",
    "pool", "result_cache", "store", "fleet",
)

_STATUS_VALUES = frozenset(status.value for status in JobStatus)

_DEFAULT_PAGE = 50
_MAX_PAGE = 500


def _http_requests():
    return get_metrics().counter(
        "repro_service_http_requests_total",
        "HTTP requests served, by method and status.", ("method", "status"))


def _parser_error_response(status: int, code: str, message: str) -> HTTPResponse:
    """Render transport-level parse failures (no API version to key on)
    in the v2 envelope — these requests never had a valid v1 shape."""
    trace_id = new_trace_id()
    return HTTPResponse.json(
        status,
        {"error": {"code": code, "message": message, "trace_id": trace_id}},
        headers={"X-Trace-Id": trace_id},
        close=True,
    )


def _encode_cursor(document: dict[str, Any]) -> str:
    raw = f"{document.get('created') or 0.0}|{document['id']}".encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def _decode_cursor(cursor: str) -> tuple[float, str]:
    raw = base64.urlsafe_b64decode(cursor.encode("ascii")).decode("utf-8")
    created, _, job_id = raw.partition("|")
    if not job_id:
        raise ValueError(cursor)
    return float(created), job_id


class ServiceHTTPServer(AsyncHTTPServer):
    """The asyncio HTTP server bound to one :class:`SimulationService`."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        auth: TokenAuth | None = None,
        header_timeout: float | None = None,
        body_timeout: float | None = None,
        open_metrics: bool = False,
    ) -> None:
        self.service = service
        self.auth = auth
        self.open_metrics = open_metrics
        kwargs: dict[str, Any] = {
            "max_body_bytes": MAX_BODY_BYTES,
            "error_renderer": _parser_error_response,
            "quiet": quiet,
        }
        if header_timeout is not None:
            kwargs["header_timeout"] = header_timeout
        if body_timeout is not None:
            kwargs["body_timeout"] = body_timeout
        super().__init__(self._handle, host, port, **kwargs)

    # ------------------------------------------------------------------
    # Router
    # ------------------------------------------------------------------

    async def _handle(self, request: HTTPRequest) -> HTTPResponse:
        path = request.path.rstrip("/") or "/"
        response = await self._route(request, path)
        _http_requests().inc(method=request.method, status=str(response.status))
        return response

    async def _route(self, request: HTTPRequest, path: str) -> HTTPResponse:
        v2 = path == "/v2" or path.startswith("/v2/")
        try:
            client = self._authenticate(request, path)
        except AuthError as error:
            trace_id = ensure_trace_id(request.header("x-trace-id"))
            return self._v2_error(
                401, "unauthorized", str(error), trace_id,
                headers={"WWW-Authenticate": "Bearer"},
            )
        if v2:
            return await self._v2(request, path, client)
        if path == "/" and request.method == "GET":
            return HTTPResponse.json(200, {
                "service": "repro",
                "version": repro.__version__,
                "api_versions": ["v1", "v2"],
                "capabilities": "/v2/capabilities",
                "deprecated": {"v1": "frozen; use /v2/"},
            })
        return await self._v1(request, path, client)

    def _authenticate(self, request: HTTPRequest, path: str) -> str:
        """The request's client identity; raises :class:`AuthError`.

        ``*/healthz`` stays open — load balancers probe it without
        credentials.  With ``open_metrics`` the Prometheus endpoints
        join the exemption (scrapers rarely carry bearer tokens); that
        is opt-in because it exposes operational counters to anyone
        who can reach the port.
        """
        if self.auth is None:
            return ANONYMOUS_CLIENT
        if path in ("/v1/healthz", "/v2/healthz"):
            return ANONYMOUS_CLIENT
        if self.open_metrics and path in ("/v1/metrics", "/v2/metrics"):
            return ANONYMOUS_CLIENT
        token = None
        header = request.header("authorization")
        if header is not None and header.lower().startswith("bearer "):
            token = header[len("bearer "):].strip()
        return self.auth.identify(token, request.peer_host)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    async def _await_job(self, job_id: str, timeout: float) -> dict[str, Any]:
        """Hold the request coroutine until the job is terminal.

        The dispatcher/watcher threads fire the subscription callback,
        which hops onto this loop via ``call_soon_threadsafe`` — the
        waiting connection costs one coroutine and one ``asyncio.Event``,
        never a thread.
        """
        service = self.service
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        subscribed = service.subscribe(
            job_id, lambda: loop.call_soon_threadsafe(event.set))
        if subscribed and timeout > 0:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(event.wait(), timeout)
        return service.job(job_id)

    @staticmethod
    def _wait_params(request: HTTPRequest) -> tuple[bool, float]:
        wait = request.query.get("wait", "").lower() in _TRUTHY
        try:
            timeout = float(request.query.get("timeout", DEFAULT_WAIT_TIMEOUT))
        except ValueError:
            timeout = DEFAULT_WAIT_TIMEOUT
        return wait, max(0.0, min(timeout, MAX_WAIT_TIMEOUT))

    # ------------------------------------------------------------------
    # v1 — the deprecation shim (bodies byte-identical to the threaded
    # server; the only addition is the Deprecation header)
    # ------------------------------------------------------------------

    @staticmethod
    def _v1_reply(code: int, payload: dict, headers: dict[str, str] | None = None,
                  close: bool = False) -> HTTPResponse:
        extra = dict(headers or {})
        extra["Deprecation"] = "true"
        return HTTPResponse.json(code, payload, extra, close=close)

    @classmethod
    def _v1_error(cls, code: int, message: str,
                  headers: dict[str, str] | None = None,
                  close: bool = False) -> HTTPResponse:
        return cls._v1_reply(code, {"error": message}, headers, close=close)

    async def _v1(self, request: HTTPRequest, path: str, client: str) -> HTTPResponse:
        service = self.service
        method = request.method
        if method == "GET":
            if path == "/v1/healthz":
                # Liveness only — no filesystem scans (stats() walks the
                # cache and store directories, far too heavy for a probe).
                return self._v1_reply(200, {
                    "status": "ok",
                    "version": repro.__version__,
                    **service.health(),
                })
            if path == "/v1/stats":
                stats = service.stats()
                return self._v1_reply(
                    200, {key: stats[key] for key in _V1_STATS_KEYS})
            if path == "/v1/metrics":
                # Prometheus text exposition format, version 0.0.4.
                response = HTTPResponse.text(
                    200, service.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8")
                response.headers.append(("Deprecation", "true"))
                return response
            if path.startswith("/v1/runs/"):
                job_id = path[len("/v1/runs/"):]
                if "/" in job_id or not job_id:
                    return self._v1_error(404, f"no such resource {path!r}")
                try:
                    return self._v1_reply(200, service.job(job_id))
                except UnknownJobError:
                    return self._v1_error(404, f"unknown job {job_id!r}")
            return self._v1_error(404, f"no such resource {path!r}")
        if method == "DELETE":
            if not path.startswith("/v1/runs/"):
                return self._v1_error(404, f"no such resource {path!r}")
            job_id = path[len("/v1/runs/"):]
            if "/" in job_id or not job_id:
                return self._v1_error(404, f"no such resource {path!r}")
            try:
                return self._v1_reply(200, service.cancel(job_id))
            except UnknownJobError:
                return self._v1_error(404, f"unknown job {job_id!r}")
            except CancelConflictError as error:
                return self._v1_error(409, str(error))
        if method == "POST":
            return await self._v1_post(request, path, client)
        return self._v1_error(404, f"no such resource {path!r}")

    async def _v1_post(self, request: HTTPRequest, path: str, client: str) -> HTTPResponse:
        service = self.service
        # Reconstruct the threaded server's Content-Length view so every
        # error body (and its Connection: close decision) stays
        # byte-identical: chunked uploads had no Content-Length there.
        if request.body_issue == "bad_length":
            length = -1
        elif request.body_issue == "too_large":
            length = request.declared_length
        elif request.body_issue == "chunked":
            length = 0
        else:
            length = len(request.body)
        close = path != "/v1/runs" or not (0 < length <= MAX_BODY_BYTES)
        if path != "/v1/runs":
            return self._v1_error(404, f"no such resource {path!r}", close=close)
        if length < 0:
            return self._v1_error(400, "invalid Content-Length", close=close)
        if length == 0:
            return self._v1_error(400, "request body required", close=close)
        if length > MAX_BODY_BYTES:
            return self._v1_error(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes", close=close)
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return self._v1_error(400, f"invalid JSON body: {error}")
        try:
            job = service.submit_payload(
                payload, trace_id=request.header("x-trace-id"), client=client)
        except ProtocolError as error:
            return self._v1_error(400, str(error))
        except QueueFullError as error:
            return self._v1_error(503, str(error), headers={"Retry-After": "1"})
        except RateLimitedError as error:
            return self._v1_error(
                429, str(error),
                headers={"Retry-After": str(max(1, math.ceil(error.retry_after)))})
        except ServiceClosedError as error:
            # Draining: advertise the close so clients re-resolve.
            return self._v1_error(503, str(error), close=service.draining)

        location = {"Location": f"/v1/runs/{job.id}", "X-Trace-Id": job.trace_id}
        wait, timeout = self._wait_params(request)
        if wait:
            document = await self._await_job(job.id, timeout)
            finished = document["status"] in TERMINAL_STATUSES
            return self._v1_reply(200 if finished else 202, document, location)
        return self._v1_reply(202, job.to_dict(), location)

    # ------------------------------------------------------------------
    # v2 — the current surface
    # ------------------------------------------------------------------

    @staticmethod
    def _v2_error(status: int, code: str, message: str, trace_id: str,
                  retry_after: float | None = None,
                  headers: dict[str, str] | None = None,
                  close: bool = False) -> HTTPResponse:
        envelope: dict[str, Any] = {
            "code": code, "message": message, "trace_id": trace_id,
        }
        extra = dict(headers or {})
        if retry_after is not None:
            envelope["retry_after"] = retry_after
            extra["Retry-After"] = str(max(1, math.ceil(retry_after)))
        extra["X-Trace-Id"] = trace_id
        return HTTPResponse.json(status, {"error": envelope}, extra, close=close)

    async def _v2(self, request: HTTPRequest, path: str, client: str) -> HTTPResponse:
        service = self.service
        method = request.method
        trace_id = ensure_trace_id(request.header("x-trace-id"))
        if path == "/v2/runs":
            if method == "POST":
                return await self._v2_submit(request, client, trace_id)
            if method == "GET":
                return self._v2_list(request, trace_id)
            return self._v2_error(
                405, "method_not_allowed", f"{method} not allowed on {path}",
                trace_id, headers={"Allow": "GET, POST"})
        if path.startswith("/v2/runs/"):
            job_id = path[len("/v2/runs/"):]
            if "/" in job_id or not job_id:
                return self._v2_error(
                    404, "not_found", f"no such resource {path!r}", trace_id)
            if method == "GET":
                try:
                    return HTTPResponse.json(200, service.job(job_id))
                except UnknownJobError:
                    return self._v2_error(
                        404, "unknown_job", f"unknown job {job_id!r}", trace_id)
            if method == "DELETE":
                try:
                    return HTTPResponse.json(200, service.cancel(job_id))
                except UnknownJobError:
                    return self._v2_error(
                        404, "unknown_job", f"unknown job {job_id!r}", trace_id)
                except CancelConflictError as error:
                    return self._v2_error(
                        409, "cancel_conflict", str(error), trace_id)
            return self._v2_error(
                405, "method_not_allowed", f"{method} not allowed on {path}",
                trace_id, headers={"Allow": "GET, DELETE"})
        if method != "GET":
            return self._v2_error(
                405, "method_not_allowed", f"{method} not allowed on {path}",
                trace_id, headers={"Allow": "GET"})
        if path == "/v2/healthz":
            return HTTPResponse.json(200, {
                "status": "ok",
                "version": repro.__version__,
                **service.health(),
                "draining": service.draining,
            })
        if path == "/v2/stats":
            stats = service.stats()
            stats["http"] = {"open_connections": self.open_connections}
            return HTTPResponse.json(200, stats)
        if path == "/v2/metrics":
            return HTTPResponse.text(
                200, service.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8")
        if path == "/v2/capabilities":
            return HTTPResponse.json(200, self._capabilities())
        if path.startswith("/v2/traces/"):
            wanted = path[len("/v2/traces/"):]
            if "/" in wanted or not wanted:
                return self._v2_error(
                    404, "not_found", f"no such resource {path!r}", trace_id)
            spans = service.spans.get(wanted)
            if not spans:
                return self._v2_error(
                    404, "unknown_trace",
                    f"no spans recorded for trace {wanted!r} (sampled out, "
                    "expired from the store, or never seen)", trace_id)
            return HTTPResponse.json(200, {
                "trace_id": wanted,
                "span_count": len(spans),
                "spans": spans,
                "tree": build_tree(spans),
            })
        return self._v2_error(
            404, "not_found", f"no such resource {path!r}", trace_id)

    def _capabilities(self) -> dict[str, Any]:
        service = self.service
        quota = service.quota
        return {
            "version": repro.__version__,
            "api_versions": ["v1", "v2"],
            "mode": "broker" if service.broker is not None else "local",
            "draining": service.draining,
            "backends": list(available()),
            "lanes": {
                "enabled": service.small_job_branches is not None,
                "threshold_branches": service.small_job_branches,
                "names": list(service.lanes),
            },
            "auth": {
                "enabled": self.auth is not None,
                "loopback_exempt": self.auth.allow_loopback if self.auth else True,
                "clients": self.auth.clients if self.auth else [],
            },
            "limits": {
                "max_body_bytes": self.max_body_bytes,
                "max_batch_requests": MAX_BATCH_REQUESTS,
                "queue_size": service.queue_size,
                "max_wait_timeout_seconds": MAX_WAIT_TIMEOUT,
                "quota": quota.policy.to_dict() if quota is not None else None,
            },
        }

    def _v2_list(self, request: HTTPRequest, trace_id: str) -> HTTPResponse:
        query = request.query
        status = query.get("status")
        if status is not None and status not in _STATUS_VALUES:
            return self._v2_error(
                400, "invalid_status",
                f"unknown status {status!r}; one of {sorted(_STATUS_VALUES)}",
                trace_id)
        try:
            limit = int(query.get("limit", _DEFAULT_PAGE))
            if limit < 1:
                raise ValueError(limit)
        except ValueError:
            return self._v2_error(
                400, "invalid_limit",
                f"limit must be a positive integer, got {query.get('limit')!r}",
                trace_id)
        limit = min(limit, _MAX_PAGE)
        after: tuple[float, str] | None = None
        cursor = query.get("cursor")
        if cursor:
            try:
                after = _decode_cursor(cursor)
            except (ValueError, binascii.Error, UnicodeDecodeError):
                return self._v2_error(
                    400, "invalid_cursor", f"malformed cursor {cursor!r}",
                    trace_id)
        documents = self.service.documents()
        if status is not None:
            documents = [doc for doc in documents if doc.get("status") == status]
        # Newest first; the cursor pins (created, id) so pagination is
        # stable under concurrent submissions.
        documents.sort(
            key=lambda doc: (doc.get("created") or 0.0, doc["id"]), reverse=True)
        if after is not None:
            documents = [
                doc for doc in documents
                if (doc.get("created") or 0.0, doc["id"]) < after
            ]
        page = documents[:limit]
        next_cursor = _encode_cursor(page[-1]) if len(documents) > limit else None
        return HTTPResponse.json(200, {
            "runs": page,
            "count": len(page),
            "next_cursor": next_cursor,
        })

    async def _v2_submit(self, request: HTTPRequest, client: str,
                         trace_id: str) -> HTTPResponse:
        service = self.service
        if request.body_issue == "chunked":
            return self._v2_error(
                400, "chunked_not_supported",
                "chunked transfer encoding is not supported; "
                "send Content-Length", trace_id, close=True)
        if request.body_issue == "bad_length":
            return self._v2_error(
                400, "bad_content_length", "invalid Content-Length",
                trace_id, close=True)
        if request.body_issue == "too_large":
            return self._v2_error(
                413, "body_too_large",
                f"request body of {request.declared_length} bytes exceeds "
                f"{self.max_body_bytes} bytes", trace_id, close=True)
        if not request.body:
            return self._v2_error(
                400, "empty_body", "request body required", trace_id)
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return self._v2_error(
                400, "invalid_json", f"invalid JSON body: {error}", trace_id)
        try:
            job = service.submit_payload(
                payload, trace_id=request.header("x-trace-id"), client=client)
        except ProtocolError as error:
            return self._v2_error(400, error.code, str(error), trace_id)
        except QueueFullError as error:
            return self._v2_error(
                503, "queue_full", str(error), trace_id, retry_after=1.0)
        except RateLimitedError as error:
            return self._v2_error(
                429, error.code, str(error), trace_id,
                retry_after=error.retry_after)
        except ServiceClosedError as error:
            draining = service.draining
            return self._v2_error(
                503, "draining" if draining else "closed", str(error),
                trace_id, close=draining)

        location = {"Location": f"/v2/runs/{job.id}", "X-Trace-Id": job.trace_id}
        wait, timeout = self._wait_params(request)
        if wait:
            document = await self._await_job(job.id, timeout)
            finished = document["status"] in TERMINAL_STATUSES
            return HTTPResponse.json(200 if finished else 202, document, location)
        return HTTPResponse.json(202, job.to_dict(), location)


def make_server(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    auth: TokenAuth | None = None,
    header_timeout: float | None = None,
    body_timeout: float | None = None,
    open_metrics: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP server; ``port=0`` picks a free port."""
    return ServiceHTTPServer(
        service, host, port, quiet=quiet, auth=auth,
        header_timeout=header_timeout, body_timeout=body_timeout,
        open_metrics=open_metrics)


def serve(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 8321,
    quiet: bool = True,
    auth: TokenAuth | None = None,
    open_metrics: bool = False,
) -> None:
    """Run the service until interrupted, then shut down cleanly."""
    server = make_server(service, host, port, quiet=quiet, auth=auth,
                         open_metrics=open_metrics)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
