"""The service core: bounded job queues draining into warm runners.

:class:`SimulationService` is transport-agnostic — the HTTP app, the
tests and the benchmarks all drive this same object:

* :meth:`~SimulationService.submit` validates and enqueues a job
  (raising :class:`QueueFullError` when the bounded queue is at
  capacity — callers map that to HTTP 503 — and
  :class:`~repro.service.quota.RateLimitedError` when the submitting
  client is over its quota — HTTP 429),
* dispatcher threads pop jobs in FIFO order per **lane** and execute
  each as a single :meth:`~repro.api.runner.Runner.run_batch` call on a
  runner in persistent mode, so every job after the first hits warm
  worker processes with cached predictor instances,
* terminal job documents move into the pluggable result store;
  :meth:`~SimulationService.job` serves live and stored jobs through one
  lookup,
* :meth:`~SimulationService.stats` reports queue depth, job counters,
  per-lane dispatcher utilization, warm-pool and result-cache hit rates
  — the numbers an operator needs to size the pool.

**Priority lanes** (``small_job_branches=...``): jobs whose estimated
branch count (:func:`~repro.service.protocol.estimate_branches`) is at
or under the threshold route to an ``interactive`` lane with its own
queue, dispatcher thread and runner, so a fig10-sized batch grinding in
the ``batch`` lane cannot head-of-line-block a quick interactive
simulation.  With lanes off (the default) a single ``default`` lane
preserves the strict global FIFO the tests rely on.  Jobs within one
lane are serialized with respect to each other (the parallelism lives
in the worker pool, not in concurrent batches), which keeps results
deterministic however many clients submit concurrently.

**Broker-dispatch mode** (``broker=...``, selected by ``repro serve
--broker``): instead of executing locally, the dispatcher *publishes*
each job to a :class:`~repro.distrib.broker.Broker` and a watcher thread
follows the broker's view of it — leased (a fleet worker is executing it,
the job shows ``running`` with its worker id and attempt count), done
(results arrive from the worker, byte-identical to local execution),
dead-lettered (the job fails with the broker's last error).  Jobs run
*concurrently* across however many workers lease them; the front end
also reaps expired leases, so progress survives every worker dying.
Default single-process behavior is completely unchanged when no broker
is given.

**Graceful drain** (:meth:`~SimulationService.drain`): stop accepting,
let running jobs finish, persist still-queued jobs to the store (local
mode) or leave them with the broker (fleet mode) as ``status:
"queued"`` marker documents, then release resources.  A restarted
service calls :meth:`~SimulationService.recover` to re-adopt them.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from typing import Any, Callable, Sequence

from repro.api.request import RunRequest
from repro.api.results import suite_payload
from repro.api.runner import Runner
from repro.obs import (
    SpanStore,
    bind_span_context,
    bind_trace_id,
    ensure_trace_id,
    get_logger,
    get_metrics,
    get_tracer,
    log_event,
    make_span,
    new_span_id,
    span,
)
from repro.service.protocol import Job, JobStatus, estimate_branches, parse_submission
from repro.service.quota import ClientQuota
from repro.service.store import MemoryResultStore, ResultStore

_LOG = get_logger("service")


def _job_counter():
    return get_metrics().counter(
        "repro_service_jobs_total",
        "Jobs that reached a terminal state, by status.", ("status",))


def _lane_counter():
    return get_metrics().counter(
        "repro_service_lane_jobs_total",
        "Jobs dispatched, by lane.", ("lane",))


def _obs_errors():
    return get_metrics().counter(
        "repro_obs_errors_total",
        "Exceptions swallowed by background threads, by component.",
        ("component",))

__all__ = [
    "CancelConflictError",
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_SMALL_JOB_BRANCHES",
    "QueueFullError",
    "ServiceClosedError",
    "SimulationService",
    "UnknownJobError",
]

DEFAULT_QUEUE_SIZE = 64
#: Bound of the default in-memory result store.
DEFAULT_STORE_ENTRIES = 4096

#: Default interactive-lane threshold for ``repro serve --lanes``: a
#: gshare run over a 200k-branch synthetic trace takes well under a
#: second on the vector kernels, while fig10-sized batches are ~2M
#: branches — an order of magnitude above the cut.
DEFAULT_SMALL_JOB_BRANCHES = 200_000

#: How often the idle dispatcher re-checks the stop signal, seconds.
_DRAIN_POLL_SECONDS = 0.1

#: How often the broker watcher polls published jobs, seconds.
DEFAULT_BROKER_POLL_SECONDS = 0.05

#: Broker job states that map onto a locally-queued job.
_REMOTE_QUEUED = ("pending",)


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity (maps to HTTP 503)."""


class UnknownJobError(KeyError):
    """No live or stored job has the requested id (maps to HTTP 404)."""


class CancelConflictError(RuntimeError):
    """The job exists but is not cancellable (maps to HTTP 409).

    Only *queued* jobs cancel: a running batch is already executing on
    the worker pool and a terminal job has nothing left to cancel.
    """


class ServiceClosedError(RuntimeError):
    """The service no longer accepts submissions (closed or draining)."""


class _Lane:
    """One dispatch lane: a FIFO queue, a dispatcher thread, a runner."""

    def __init__(self, name: str, runner: Runner | None) -> None:
        self.name = name
        self.runner = runner  # None in broker mode: lanes publish, not execute
        # Unbounded on purpose: the back-pressure bound is enforced in
        # submit() by counting live QUEUED jobs, so a cancelled job frees
        # its capacity immediately even though its tombstone stays in the
        # channel until the dispatcher pops (and skips) it.
        self.queue: "queue.Queue[Job]" = queue.Queue()
        self.thread: threading.Thread | None = None
        self.executed = 0
        self.busy_seconds = 0.0
        self.busy_since: float | None = None


class SimulationService:
    """Queues + dispatchers + warm runners + result store, as one object.

    Parameters
    ----------
    runner:
        The executing :class:`Runner` (the ``batch``/``default`` lane);
        defaults to an env-configured runner in persistent mode.  The
        service owns the runner it is given and closes it on
        :meth:`close`.
    store:
        Terminal job documents; defaults to a :class:`MemoryResultStore`
        bounded to :data:`DEFAULT_STORE_ENTRIES` documents (oldest
        dropped), so a long-running default service cannot grow without
        bound.  Pass an unbounded or disk-backed store explicitly to
        keep more.
    queue_size:
        Bound of the pending-job queue across all lanes (back-pressure,
        not buffering: a full queue rejects rather than grows).
    broker:
        A :class:`~repro.distrib.broker.Broker` selects broker-dispatch
        mode: jobs are published to the fleet instead of executed on a
        local runner (see the module docstring).  The service owns the
        broker it is given and closes it on :meth:`close`.  In this mode
        no local runner is created unless one is passed explicitly.
    broker_poll:
        Watcher poll interval in broker mode, seconds.
    small_job_branches:
        Enables priority lanes: submissions estimated at or under this
        many simulated branches route to the ``interactive`` lane,
        larger ones to ``batch``.  ``None`` (default) keeps the single
        ``default`` lane.
    interactive_runner:
        The interactive lane's runner; defaults to a second
        env-configured persistent runner when lanes are enabled in
        local mode.  Also owned and closed by the service.
    quota:
        A :class:`~repro.service.quota.ClientQuota` enforcing per-client
        rate limits and live-job caps at :meth:`submit`; ``None``
        disables quota checks.
    """

    def __init__(
        self,
        runner: Runner | None = None,
        store: ResultStore | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        broker=None,
        broker_poll: float = DEFAULT_BROKER_POLL_SECONDS,
        small_job_branches: int | None = None,
        interactive_runner: Runner | None = None,
        quota: ClientQuota | None = None,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be at least 1, got {queue_size}")
        if small_job_branches is not None and small_job_branches < 1:
            raise ValueError(
                f"small_job_branches must be at least 1, got {small_job_branches}"
            )
        self.broker = broker
        self.broker_poll = broker_poll
        if runner is not None:
            self.runner = runner
        elif broker is not None:
            # The front end never executes in broker mode; building a
            # default runner would only spawn a pool nothing uses.
            self.runner = None
        else:
            self.runner = Runner.from_env(persistent=True)
        self.store = (
            store if store is not None else MemoryResultStore(max_entries=DEFAULT_STORE_ENTRIES)
        )
        self.queue_size = queue_size
        self.quota = quota
        self.small_job_branches = small_job_branches
        if small_job_branches is None:
            self.interactive_runner = None
            self._lanes = {"default": _Lane("default", self.runner)}
        else:
            if interactive_runner is None and broker is None:
                interactive_runner = Runner.from_env(persistent=True)
            self.interactive_runner = interactive_runner
            self._lanes = {
                "interactive": _Lane("interactive", interactive_runner),
                "batch": _Lane("batch", self.runner),
            }
        self._live: dict[str, Job] = {}
        #: Jobs published to the broker and not yet terminal (broker mode).
        self._remote: dict[str, Job] = {}
        #: Completed span trees, per trace id (``GET /v2/traces/{id}``).
        self.spans = SpanStore()
        self._lock = threading.Lock()
        self._watcher: threading.Thread | None = None
        self._stop = threading.Event()
        self._closed = False
        self._draining = False
        self._started_at = time.time()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.recovered = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SimulationService":
        """Start the dispatcher (and, in broker mode, watcher) threads."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        for lane in self._lanes.values():
            if lane.thread is None:
                lane.thread = threading.Thread(
                    target=self._drain_lane, args=(lane,),
                    name=f"repro-service-dispatcher-{lane.name}", daemon=True,
                )
                lane.thread.start()
        if self.broker is not None and self._watcher is None:
            self._watcher = threading.Thread(
                target=self._watch, name="repro-service-broker-watcher", daemon=True
            )
            self._watcher.start()
        return self

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop accepting jobs, drain in-flight work, release resources.

        Already-queued jobs still execute; new submissions are rejected.
        ``close`` itself never blocks on the queue — it signals a stop
        event and waits up to ``timeout`` for the drain.  If a
        dispatcher outlives the timeout (a long job mid-flight), it
        closes its runner itself on exit, so worker processes are never
        leaked either way.  In broker mode the watcher keeps following
        already-published jobs until they finish (the graceful-drain
        contract: leases are completed, not abandoned) or the timeout
        lapses.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        deadline = None if timeout is None else time.time() + timeout
        for lane in self._lanes.values():
            if lane.thread is not None:
                remaining = None if deadline is None else max(deadline - time.time(), 0.0)
                lane.thread.join(timeout=remaining)
        watcher = self._watcher
        if watcher is not None:
            remaining = None if deadline is None else max(deadline - time.time(), 0.0)
            watcher.join(timeout=remaining)
        for lane in self._lanes.values():
            if lane.runner is not None and (lane.thread is None or not lane.thread.is_alive()):
                lane.runner.close()
        if self.broker is not None and (watcher is None or not watcher.is_alive()):
            self.broker.close()

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Graceful drain and recovery
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop accepting submissions; running jobs keep executing."""
        with self._lock:
            self._draining = True

    def drain(self, timeout: float | None = 30.0) -> int:
        """Gracefully wind down; returns the number of jobs parked.

        Stops accepting, *parks* still-queued jobs (persists their
        ``status: "queued"`` documents to the store so
        :meth:`recover` on the next process re-adopts them), lets
        running jobs finish, then closes.  In broker mode queued jobs
        are first handed to the broker (the fleet is the durable queue)
        and a queued marker is stored for each published job so a
        restarted front end re-adopts the watch.
        """
        self.begin_drain()
        parked = 0
        if self.broker is None:
            for lane in self._lanes.values():
                with lane.queue.mutex:
                    pending = list(lane.queue.queue)
                    lane.queue.queue.clear()
                for job in pending:
                    with self._lock:
                        if job.status is not JobStatus.QUEUED:
                            continue  # a cancel tombstone; already stored
                    self.store.put(job.id, job.to_dict())
                    with self._lock:
                        self._live.pop(job.id, None)
                    log_event(_LOG, logging.INFO, "job parked for restart",
                              trace_id=job.trace_id, job=job.id)
                    job.mark_done()
                    parked += 1
        else:
            # Let the dispatchers hand everything queued to the broker —
            # publishing is quick — then mark what the fleet now owns.
            deadline = time.time() + min(timeout if timeout is not None else 5.0, 5.0)
            while time.time() < deadline:
                with self._lock:
                    unpublished = any(
                        job.status is JobStatus.QUEUED and job.id not in self._remote
                        for job in self._live.values()
                    )
                if not unpublished:
                    break
                time.sleep(0.05)
            with self._lock:
                remote = list(self._remote.values())
                self._remote.clear()  # the watcher stops following; exit fast
            for job in remote:
                # put_new: never clobber a result another front end (or
                # our own watcher, racing) already finalized.
                self.store.put_new(job.id, job.to_dict())
                parked += 1
        if parked:
            log_event(_LOG, logging.INFO, "drain parked queued jobs", parked=parked)
        self.close(timeout=timeout)
        return parked

    def recover(self) -> int:
        """Re-adopt jobs a drained predecessor parked in the store.

        Scans the store for ``status == "queued"`` documents and
        re-enqueues them (re-publishing to the broker when the fleet no
        longer knows the job).  Returns the number adopted.  Recovered
        jobs bypass the queue bound — they were admitted once already.
        """
        adopted = 0
        for document in self.store.documents():
            if document.get("status") != "queued":
                continue
            try:
                requests = [RunRequest.from_dict(entry) for entry in document["requests"]]
                job = Job(
                    requests=requests,
                    batch=bool(document.get("batch", True)),
                    id=document["id"],
                    created=float(document.get("created") or time.time()),
                    trace_id=ensure_trace_id(document.get("trace_id")),
                )
            except Exception as error:  # noqa: BLE001 - a corrupt marker must not block startup
                log_event(_LOG, logging.WARNING, "unrecoverable parked job",
                          job=document.get("id"), error=repr(error))
                continue
            job.lane = self._classify(job.requests)
            with self._lock:
                if self._closed or self._draining:
                    break
                if job.id in self._live:
                    continue
                self._live[job.id] = job
                self.submitted += 1
                self.recovered += 1
            if self.broker is not None:
                try:
                    self.broker.snapshot(job.id)
                except KeyError:
                    self._lanes[job.lane].queue.put_nowait(job)  # republish
                except Exception:  # noqa: BLE001 - transient broker IO: republish
                    self._lanes[job.lane].queue.put_nowait(job)
                else:
                    with self._lock:
                        self._remote[job.id] = job  # the fleet still owns it
            else:
                self._lanes[job.lane].queue.put_nowait(job)
            log_event(_LOG, logging.INFO, "parked job recovered",
                      trace_id=job.trace_id, job=job.id, lane=job.lane)
            adopted += 1
        return adopted

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------

    def _classify(self, requests: Sequence[RunRequest]) -> str:
        if self.small_job_branches is None:
            return "default"
        try:
            branches = estimate_branches(requests)
        except Exception:  # noqa: BLE001 - unknown scheme params: assume big
            return "batch"
        return "interactive" if branches <= self.small_job_branches else "batch"

    def submit(self, requests: Sequence[RunRequest], batch: bool = True,
               trace_id: str | None = None, client: str | None = None) -> Job:
        """Enqueue already-validated requests as one job.

        ``trace_id`` adopts a caller-minted id (the ``X-Trace-Id``
        header / ``--trace-id`` flag); invalid or absent ids are
        replaced by a fresh one, never rejected.  ``client`` is the
        authenticated client identity quota accounting keys on; the
        quota (when configured) may raise
        :class:`~repro.service.quota.RateLimitedError`.
        """
        job = Job(requests=list(requests), batch=batch,
                  trace_id=ensure_trace_id(trace_id))
        if not job.requests:
            raise ValueError("a job needs at least one request")
        job.client = client
        job.lane = self._classify(job.requests)
        # The trace tree's root is minted at admission so every later
        # span — lane queue, dispatch, broker ticket, worker execution —
        # parents under one id.  None = the trace lost the sampling draw.
        if get_tracer().sampled(job.trace_id):
            job.root_span = new_span_id()
        lane = self._lanes[job.lane]
        with self._lock:
            if self._closed or self._draining:
                raise ServiceClosedError(
                    "service is draining" if self._draining else "service is closed"
                )
            depth = sum(
                1 for live in self._live.values() if live.status is JobStatus.QUEUED
            )
            if depth >= self.queue_size:
                raise QueueFullError(
                    f"job queue is full ({depth} pending jobs); retry later"
                )
            if self.quota is not None and self.quota.policy.enforced:
                live_jobs = sum(
                    1 for live in self._live.values() if live.client == client
                )
                # Raises RateLimitedError; nothing enqueued, no state to
                # unwind (the quota lock nests inside the service lock).
                self.quota.admit(client or "anonymous", live_jobs)
            lane.queue.put_nowait(job)
            self._live[job.id] = job
            self.submitted += 1
            depth += 1
        registry = get_metrics()
        registry.counter(
            "repro_service_submitted_total", "Jobs accepted into the queue.").inc()
        registry.gauge(
            "repro_service_queue_depth",
            "Jobs currently queued (bounded by queue capacity).").set(depth)
        _lane_counter().inc(lane=job.lane)
        log_event(_LOG, logging.INFO, "job queued",
                  trace_id=job.trace_id, job=job.id, lane=job.lane,
                  client=client, requests=len(job.requests), queue_depth=depth)
        return job

    def submit_payload(self, payload: Any, trace_id: str | None = None,
                       client: str | None = None) -> Job:
        """Parse a wire submission (object or list) and enqueue it."""
        requests, batch = parse_submission(payload)
        return self.submit(requests, batch=batch, trace_id=trace_id, client=client)

    def job(self, job_id: str) -> dict[str, Any]:
        """The job document, live or stored; raises :class:`UnknownJobError`."""
        with self._lock:
            live = self._live.get(job_id)
            if live is not None:
                return live.to_dict()
        document = self.store.get(job_id)
        if document is None:
            raise UnknownJobError(job_id)
        return document

    def documents(self) -> list[dict[str, Any]]:
        """Every known job document, live jobs shadowing stored copies.

        The ``/v2/runs`` listing sorts and paginates this snapshot.
        """
        with self._lock:
            merged = {job.id: job.to_dict() for job in self._live.values()}
        for document in self.store.documents():
            job_id = document.get("id")
            if job_id and job_id not in merged:
                merged[job_id] = document
        return list(merged.values())

    def subscribe(self, job_id: str, callback: Callable[[], None]) -> bool:
        """Register ``callback`` to fire when a live job turns terminal.

        Returns ``False`` when the job is not live (already terminal,
        stored, or unknown) — the caller should read the document
        instead of waiting.  Appending happens under the service lock:
        every terminal path pops the job from the live table under the
        same lock *before* firing callbacks, so a subscription either
        lands before the pop (and fires) or observes not-live here.
        """
        with self._lock:
            job = self._live.get(job_id)
            if job is None:
                return False
            job.done_callbacks.append(callback)
            return True

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a *queued* job; returns its terminal document.

        Raises :class:`UnknownJobError` for ids the service has never
        seen and :class:`CancelConflictError` when the job is already
        running or terminal — running batches execute to completion (the
        worker pool has no safe preemption point), so callers decide
        between waiting and abandoning the result.  The cancelled job
        stays in the queue as a tombstone; the dispatcher skips it.

        In broker mode a job already *published* cancels only while no
        worker holds a lease on it: the broker's pending-ticket removal
        is the atomic arbiter, so a cancel can never race a worker into
        executing a cancelled job.
        """
        with self._lock:
            job = self._live.get(job_id)
            if job is None:
                document = self.store.get(job_id)
                if document is None:
                    raise UnknownJobError(job_id)
                raise CancelConflictError(
                    f"job {job_id} is already {document['status']} and cannot be cancelled"
                )
            if job.status is not JobStatus.QUEUED:
                raise CancelConflictError(
                    f"job {job_id} is {job.status.value} and cannot be cancelled"
                )
            published = job.id in self._remote
        if published:
            # Outside the lock: the broker does IO.  A concurrent lease
            # simply makes cancel() return False here.
            if not self.broker.cancel(job.id):
                raise CancelConflictError(
                    f"job {job_id} is already leased by a worker and cannot be cancelled"
                )
        with self._lock:
            if job.status is not JobStatus.QUEUED:
                # The watcher raced us to a terminal state after the
                # broker-side cancel check; report the conflict.
                raise CancelConflictError(
                    f"job {job_id} is {job.status.value} and cannot be cancelled"
                )
            job.status = JobStatus.CANCELLED
            job.finished = time.time()
            self.cancelled += 1
            self._remote.pop(job.id, None)
        _job_counter().inc(status="cancelled")
        log_event(_LOG, logging.INFO, "job cancelled",
                  trace_id=job.trace_id, job=job.id)
        # Drop the tombstone from the channel too: without this, a client
        # looping submit/cancel while the dispatcher is busy would grow
        # the (unbounded) channel without limit.  If the dispatcher
        # already popped the job, remove() misses and the status check in
        # _execute is the race guard.
        lane_queue = self._lanes[job.lane].queue
        with lane_queue.mutex:
            try:
                lane_queue.queue.remove(job)
            except ValueError:
                pass
        # Store before unlisting so job() never sees a gap (same protocol
        # as _execute's terminal hand-off).
        self.store.put(job.id, job.to_dict())
        with self._lock:
            self._live.pop(job.id, None)
        job.mark_done()
        return job.to_dict()

    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block until the job reaches a terminal state (or ``timeout``).

        Returns the job document either way; check its ``status`` to
        distinguish completion from timeout.
        """
        with self._lock:
            live = self._live.get(job_id)
        if live is not None:
            live.done_event.wait(timeout)
        return self.job(job_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _dispatchers_running(self) -> bool:
        threads = [lane.thread for lane in self._lanes.values()]
        return all(thread is not None and thread.is_alive() for thread in threads)

    @property
    def lanes(self) -> tuple[str, ...]:
        return tuple(self._lanes)

    def health(self) -> dict[str, Any]:
        """Cheap liveness fields (no filesystem access; see ``/v1/healthz``).

        Deliberately the v1 shape — ``/v1/healthz`` bodies are frozen by
        the deprecation shim; v2 adds its extra fields itself.
        """
        return {
            "uptime_seconds": time.time() - self._started_at,
            "dispatcher_running": self._dispatchers_running(),
            "mode": "broker" if self.broker is not None else "local",
        }

    def stats(self) -> dict[str, Any]:
        """Operator metrics: queue, jobs, lanes, dispatchers, pool, caches."""
        now = time.time()
        with self._lock:
            live = list(self._live.values())
            submitted, completed, failed = self.submitted, self.completed, self.failed
            cancelled = self.cancelled
            lane_rows = {
                lane.name: (lane.executed, lane.busy_seconds, lane.busy_since)
                for lane in self._lanes.values()
            }
        uptime = max(now - self._started_at, 1e-9)
        busy_total = 0.0
        any_busy = False
        lanes: dict[str, Any] = {}
        for name, (executed, busy, busy_since) in lane_rows.items():
            if busy_since is not None:
                busy += now - busy_since
                any_busy = True
            busy_total += busy
            lanes[name] = {
                "depth": sum(
                    1 for job in live
                    if job.lane == name and job.status is JobStatus.QUEUED
                ),
                "running": sum(
                    1 for job in live
                    if job.lane == name and job.status is JobStatus.RUNNING
                ),
                "executed": executed,
                "utilization": min(busy / uptime, 1.0),
            }
        pool = self.runner.pool if self.runner is not None else None
        cache = self.runner.cache if self.runner is not None else None
        cache_stats = None
        if cache is not None:
            cache_stats = cache.stats()
            lookups = cache_stats["hits"] + cache_stats["misses"]
            cache_stats["hit_rate"] = cache_stats["hits"] / lookups if lookups else 0.0
        fleet = None
        if self.broker is not None:
            try:
                fleet = self.broker.stats()
            except Exception as error:  # noqa: BLE001 - stats must not 500 on broker IO
                fleet = {"error": f"{type(error).__name__}: {error}"}
        return {
            "uptime_seconds": now - self._started_at,
            "mode": "broker" if self.broker is not None else "local",
            "draining": self._draining,
            "queue": {
                "depth": sum(1 for job in live if job.status is JobStatus.QUEUED),
                "capacity": self.queue_size,
            },
            "jobs": {
                "submitted": submitted,
                "completed": completed,
                "failed": failed,
                "cancelled": cancelled,
                "running": sum(1 for job in live if job.status is JobStatus.RUNNING),
            },
            "dispatcher": {
                "running": self._dispatchers_running(),
                "busy": any_busy,
                "utilization": min(busy_total / (uptime * max(len(lane_rows), 1)), 1.0),
            },
            "lanes": {
                "threshold_branches": self.small_job_branches,
                "by_lane": lanes,
            },
            "clients": self.quota.stats() if self.quota is not None else None,
            "pool": pool.stats() if pool is not None else None,
            "result_cache": cache_stats,
            "store": self.store.stats(),
            "fleet": fleet,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition served by ``GET /v1/metrics``.

        Scrape-time gauges (queue depth, running jobs, lane depths,
        fleet liveness) are refreshed here; in broker mode the latest
        per-worker metric snapshots shipped over heartbeats are folded
        in, so one scrape of the front end covers runner/cache/pool
        series from the whole fleet.
        """
        registry = get_metrics()
        with self._lock:
            live = list(self._live.values())
        registry.gauge(
            "repro_service_queue_depth",
            "Jobs currently queued (bounded by queue capacity).",
        ).set(sum(1 for job in live if job.status is JobStatus.QUEUED))
        registry.gauge(
            "repro_service_running_jobs", "Jobs currently executing.",
        ).set(sum(1 for job in live if job.status is JobStatus.RUNNING))
        lane_depth = registry.gauge(
            "repro_service_lane_depth", "Queued jobs per dispatcher lane.", ("lane",))
        for name in self._lanes:
            lane_depth.set(
                sum(1 for job in live
                    if job.lane == name and job.status is JobStatus.QUEUED),
                lane=name,
            )
        extra: list[dict] = []
        if self.broker is not None:
            try:
                workers = self.broker.workers()
            except Exception as error:  # noqa: BLE001 - scrape must not 500 on broker IO
                _obs_errors().inc(component="service.metrics")
                log_event(_LOG, logging.WARNING,
                          "worker registry unavailable for scrape",
                          error=repr(error))
            else:
                registry.gauge(
                    "repro_fleet_workers_alive",
                    "Fleet workers with a fresh heartbeat.",
                ).set(len(workers))
                for record in workers:
                    snapshot = record.get("metrics")
                    if snapshot:
                        extra.append(snapshot)
        return registry.render_prometheus(extra)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def _drain_lane(self, lane: _Lane) -> None:
        try:
            while True:
                try:
                    job = lane.queue.get(timeout=_DRAIN_POLL_SECONDS)
                except queue.Empty:
                    if self._stop.is_set():
                        return
                    continue
                if self.broker is not None:
                    self._publish(job)
                else:
                    self._execute(job, lane)
        finally:
            if self._stop.is_set() and lane.runner is not None:
                # close() may already have returned (join timeout expired
                # mid-job): last one out shuts the pool.  Runner.close is
                # idempotent, so racing close() here is harmless.
                lane.runner.close()

    def _execute(self, job: Job, lane: _Lane) -> None:
        registry = get_metrics()
        with self._lock:
            if job.status is not JobStatus.QUEUED:
                return  # cancelled while queued: the tombstone is skipped
            job.status = JobStatus.RUNNING
            job.started = time.time()
            lane.busy_since = job.started
        registry.histogram(
            "repro_service_queue_wait_seconds",
            "Time a job spent queued before execution started.",
        ).observe(job.started - job.created)
        context = (None if job.root_span is None else
                   {"trace_id": job.trace_id, "span_id": job.root_span,
                    "sampled": True})
        with bind_trace_id(job.trace_id):
            log_event(_LOG, logging.INFO, "job started", job=job.id,
                      lane=lane.name, requests=len(job.requests))
            try:
                with bind_span_context(context):
                    with span("service.dispatch", lane=lane.name,
                              job=job.id, proc="serve"):
                        results = lane.runner.run_batch(job.requests)
                job.results = [
                    suite_payload(request, result)
                    for request, result in zip(job.requests, results)
                ]
                outcome = JobStatus.DONE
            except Exception as error:  # noqa: BLE001 - job faults must not kill the service
                message = str(error.args[0]) if error.args else str(error)
                job.error = f"{type(error).__name__}: {message}"
                outcome = JobStatus.FAILED
            job.finished = time.time()
            # Spans land in the store before the document turns terminal,
            # so a poller that sees "done" can immediately fetch the trace.
            self._record_request_spans(job, outcome=outcome)
            job.status = outcome
            if job.status is JobStatus.DONE:
                log_event(_LOG, logging.INFO, "job done", job=job.id,
                          seconds=round(job.finished - job.started, 6))
            else:
                log_event(_LOG, logging.WARNING, "job failed", job=job.id,
                          error=job.error)
        with self._lock:
            lane.busy_seconds += job.finished - (lane.busy_since or job.finished)
            lane.busy_since = None
            lane.executed += 1
            if job.status is JobStatus.DONE:
                self.completed += 1
            else:
                self.failed += 1
        _job_counter().inc(status=job.status.value)
        registry.histogram(
            "repro_service_job_seconds",
            "Submit-to-terminal latency of one job.",
        ).observe(job.finished - job.created)
        # Store before unlisting so job() never sees a gap between the two.
        self.store.put(job.id, job.to_dict())
        with self._lock:
            self._live.pop(job.id, None)
        job.mark_done()

    def _record_request_spans(self, job: Job, shipped=None,
                              outcome: JobStatus | None = None) -> None:
        """Synthesize the request-level spans and file everything by trace.

        The root (``service.request``) and lane-queue spans are built
        from the job's own timestamps — the queue wait has no natural
        ``with`` block, submission and dispatch happen on different
        threads — then the process recorder is drained so runner/pool
        spans recorded during dispatch land in the span store alongside
        ``shipped`` spans a fleet worker sent back with its completion.
        ``outcome`` is the terminal status when the caller has not yet
        published it on the job (spans are stored before the document
        turns terminal so trace queries never race the status flip).
        """
        status = outcome if outcome is not None else job.status
        if shipped:
            self.spans.ingest(shipped)
        if job.root_span is not None:
            finished = job.finished or time.time()
            synthesized = [make_span(
                job.trace_id, job.root_span, None, "service.request",
                job.created, max(0.0, finished - job.created),
                status="ok" if status is JobStatus.DONE else "error",
                attrs={"job": job.id, "lane": job.lane, "proc": "serve"})]
            if job.started is not None:
                synthesized.append(make_span(
                    job.trace_id, new_span_id(), job.root_span,
                    "service.queue", job.created,
                    max(0.0, job.started - job.created),
                    attrs={"lane": job.lane, "proc": "serve"}))
            self.spans.ingest(synthesized)
        self.spans.ingest(get_tracer().drain())

    # ------------------------------------------------------------------
    # Broker dispatch (publish + watch)
    # ------------------------------------------------------------------

    def _publish(self, job: Job) -> None:
        """Hand one job to the fleet; it stays QUEUED until leased."""
        with self._lock:
            if job.status is not JobStatus.QUEUED:
                return  # cancelled while queued: the tombstone is skipped
            self._remote[job.id] = job
        payload = {
            "requests": [request.to_dict() for request in job.requests],
            "batch": job.batch,
            "trace_id": job.trace_id,
        }
        if job.root_span is not None:
            # The executing worker adopts this context, so its spans
            # parent under the front end's request root.
            payload["span"] = {"trace_id": job.trace_id,
                               "span_id": job.root_span, "sampled": True}
        try:
            self.broker.publish(job.id, payload)
            log_event(_LOG, logging.INFO, "job published",
                      trace_id=job.trace_id, job=job.id)
        except Exception as error:  # noqa: BLE001 - broker faults must not kill the service
            message = str(error.args[0]) if error.args else str(error)
            log_event(_LOG, logging.ERROR, "publish failed",
                      trace_id=job.trace_id, job=job.id,
                      error=f"{type(error).__name__}: {message}")
            with self._lock:
                if job.status is not JobStatus.QUEUED:
                    return
                job.error = f"{type(error).__name__}: {message}"
                job.status = JobStatus.FAILED
                job.finished = time.time()
                self.failed += 1
            _job_counter().inc(status="failed")
            self._finalize(job)

    def _watch(self) -> None:
        """Follow published jobs through the broker until terminal.

        The watcher is also the deployment's reaper of last resort: it
        re-queues expired leases every tick, so jobs survive even when
        every worker has died (they execute once a worker returns).
        """
        while True:
            with self._lock:
                remote = list(self._remote.values())
            if remote:
                try:
                    self.broker.reap()
                except Exception as error:  # noqa: BLE001 - transient broker IO: retry next tick
                    _obs_errors().inc(component="service.watcher")
                    log_event(_LOG, logging.WARNING, "broker reap failed",
                              error=repr(error))
                for job in remote:
                    try:
                        snapshot = self.broker.snapshot(job.id)
                    except KeyError:
                        # Publish is still in flight (the dispatcher has
                        # the job but the broker write hasn't landed) —
                        # expected, retried next tick.
                        continue
                    except Exception as error:  # noqa: BLE001 - transient broker IO
                        _obs_errors().inc(component="service.watcher")
                        log_event(_LOG, logging.WARNING,
                                  "broker snapshot failed",
                                  trace_id=job.trace_id, job=job.id,
                                  error=repr(error))
                        continue
                    self._observe(job, snapshot)
            if self._stop.wait(self.broker_poll):
                # Graceful drain: keep following already-published jobs;
                # exit once none remain (close() bounds the wait).
                with self._lock:
                    if not self._remote:
                        return

    def _observe(self, job: Job, snapshot: dict[str, Any]) -> None:
        """Fold the broker's view of one published job into its document."""
        state = snapshot["state"]
        outcome: JobStatus | None = None
        event: tuple[int, str, dict] | None = None
        registry = get_metrics()
        with self._lock:
            if job.status.terminal:
                return
            if snapshot.get("attempts") is not None:
                job.attempts = snapshot["attempts"]
            if snapshot.get("worker") is not None:
                job.worker = snapshot["worker"]
            if state == "leased" and job.status is JobStatus.QUEUED:
                job.status = JobStatus.RUNNING
                job.started = time.time()
                event = (logging.INFO, "job leased",
                         {"worker": job.worker, "attempt": job.attempts})
                registry.histogram(
                    "repro_service_queue_wait_seconds",
                    "Time a job spent queued before execution started.",
                ).observe(job.started - job.created)
            elif state in _REMOTE_QUEUED and job.status is JobStatus.RUNNING:
                # The lease expired: the job is pending re-delivery.
                job.status = JobStatus.QUEUED
                event = (logging.WARNING, "lease expired; job re-queued",
                         {"worker": job.worker, "attempt": job.attempts})
            elif state == "done":
                job.results = snapshot["results"]
                job.finished = snapshot.get("finished") or time.time()
                self.completed += 1
                outcome = JobStatus.DONE
                event = (logging.INFO, "job done",
                         {"worker": job.worker, "attempt": job.attempts})
            elif state == "dead":
                attempts = snapshot.get("attempts")
                error = snapshot.get("error") or "no error recorded"
                job.error = f"dead-letter after {attempts} attempts: {error}"
                job.finished = snapshot.get("finished") or time.time()
                self.failed += 1
                outcome = JobStatus.FAILED
                event = (logging.WARNING, "job dead-lettered",
                         {"error": job.error})
        if event is not None:
            level, message, fields = event
            log_event(_LOG, level, message,
                      trace_id=job.trace_id, job=job.id, **fields)
        if outcome is not None:
            _job_counter().inc(status=outcome.value)
            registry.histogram(
                "repro_service_job_seconds",
                "Submit-to-terminal latency of one job.",
            ).observe(job.finished - job.created)
            # Spans must be in the store BEFORE the document turns
            # terminal, or a poller that sees "done" and immediately
            # asks /v2/traces/{id} races a 404.
            self._record_request_spans(job, shipped=snapshot.get("spans"),
                                       outcome=outcome)
            job.status = outcome
            self._finalize(job)

    def _finalize(self, job: Job) -> None:
        # Store before unlisting so job() never sees a gap (same protocol
        # as _execute's terminal hand-off).  put_new keeps the first copy
        # when several front ends share one disk store — unless the
        # existing copy is a drain marker (status "queued"), which a real
        # terminal document must replace.
        if not self.store.put_new(job.id, job.to_dict()):
            existing = self.store.get(job.id)
            if existing is not None and existing.get("status") == "queued":
                self.store.put(job.id, job.to_dict())
        with self._lock:
            self._live.pop(job.id, None)
            self._remote.pop(job.id, None)
        job.mark_done()
