"""Drivers for every experiment of the paper's evaluation.

Each ``run_*`` function corresponds to one row of the per-experiment index
in DESIGN.md (one table, figure or reported group of numbers of the
paper).  They all take a list of traces so that tests can use tiny suites
and the benchmark harness can use larger ones, and they all return an
:class:`ExperimentTable` whose rows are plain Python values, ready to be
printed, asserted on, or dumped to EXPERIMENTS.md.

Predictors are described as registry specs
(:class:`~repro.predictors.registry.PredictorSpec`) and every suite runs
through the ambient :class:`~repro.api.runner.Runner` facade: drivers that
need several suites submit them as one batch, so all (spec, trace) pairs
interleave into a single process pool.  Configuration (worker count,
result cache) comes from :meth:`~repro.api.config.RunnerConfig.from_env`
— ``REPRO_SUITE_WORKERS``, ``REPRO_SUITE_CACHE`` and
``REPRO_SUITE_CACHE_VERSION`` — unless an entry point installs its own
runner with :func:`~repro.api.runner.using_runner` (the ``repro`` CLI
does, so its ``--workers``/``--cache-dir`` flags reach every experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.api.runner import active_runner
from repro.core.augmented import RetireReadScope
from repro.core.config import make_reference_tage_config
from repro.core.tage import TAGEPredictor
from repro.hardware.cacti import PredictorCostModel
from repro.pipeline.config import PipelineConfig
from repro.pipeline.metrics import SuiteResult
from repro.pipeline.scenarios import UpdateScenario
from repro.predictors.registry import PredictorSpec
from repro.traces.suite import HARD_TRACES
from repro.traces.trace import Trace

__all__ = [
    "ExperimentTable",
    "run_access_counts",
    "run_update_scenarios",
    "run_bank_interleaving",
    "run_ium_recovery",
    "run_side_predictor_stack",
    "run_history_robustness",
    "run_fig9_size_sweep",
    "run_fig10_hard_traces",
    "run_cost_effective",
    "run_suite_characteristics",
]


@dataclass
class ExperimentTable:
    """One regenerated table/figure: headers, rows and the paper's reference values."""

    experiment: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    paper_reference: str = ""

    def add_row(self, *cells) -> None:
        """Append one row."""
        self.rows.append(list(cells))

    def to_table(self) -> str:
        """Render the experiment as a text table (plus the paper's reference)."""
        text = format_table(self.headers, self.rows, title=self.experiment)
        if self.paper_reference:
            text += f"\npaper reference: {self.paper_reference}"
        return text

    def column(self, name: str) -> list:
        """Return one column by header name (for assertions in tests/benches)."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def lookup(self, key) -> list:
        """Return the first row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row with key {key!r} in experiment {self.experiment!r}")


def _suite(spec: PredictorSpec, traces: list[Trace], scenario=UpdateScenario.IMMEDIATE,
           config: PipelineConfig | None = None) -> SuiteResult:
    """Run one predictor spec over the traces through the ambient runner."""
    return active_runner().run_suite(spec, traces, scenario=scenario, pipeline=config)


def _suites(
    runs: list[tuple[PredictorSpec, UpdateScenario, PipelineConfig | None]],
    traces: list[Trace],
) -> list[SuiteResult]:
    """Run several (spec, scenario, config) suites as one interleaved batch.

    Every (spec, trace) pair of every run goes into the same pool, so a
    driver comparing five predictors keeps all workers busy until the
    whole experiment drains instead of parallelising one suite at a time.
    """
    return active_runner().run_suites(
        [(spec, traces, scenario, config) for spec, scenario, config in runs]
    )


# ---------------------------------------------------------------------------
# E1 — Section 4.1.1: effective writes after silent-update elimination
# ---------------------------------------------------------------------------

def run_access_counts(traces: list[Trace]) -> ExperimentTable:
    """Effective writes per misprediction / per 100 branches (TAGE, GEHL, gshare)."""
    table = ExperimentTable(
        experiment="E1 access-counts (Section 4.1.1)",
        headers=["predictor", "writes/misprediction", "writes/100 branches",
                 "accesses/branch", "mppki"],
        paper_reference="TAGE 2.17 & 9.06, GEHL 1.94 & 9.10, gshare 1.54 & 9.61",
    )
    specs = [
        ("tage", PredictorSpec("tage")),
        ("gehl", PredictorSpec("gehl")),
        ("gshare", PredictorSpec("gshare")),
    ]
    suites = _suites([(spec, UpdateScenario.IMMEDIATE, None) for _, spec in specs], traces)
    for (name, _), suite in zip(specs, suites):
        profile = suite.access_profile
        table.add_row(
            name,
            profile.writes_per_misprediction,
            profile.writes_per_100_branches,
            profile.accesses_per_branch,
            suite.mppki,
        )
    return table


# ---------------------------------------------------------------------------
# E2 — Section 4.1.2: update scenarios [I]/[A]/[B]/[C]
# ---------------------------------------------------------------------------

def run_update_scenarios(
    traces: list[Trace],
    config: PipelineConfig | None = None,
    include_gehl: bool = True,
) -> ExperimentTable:
    """MPPKI of gshare / GEHL / TAGE under the four update scenarios."""
    table = ExperimentTable(
        experiment="E2 update-scenarios (Section 4.1.2)",
        headers=["predictor", "[I]", "[A]", "[B]", "[C]"],
        paper_reference=(
            "gshare 944/970/1292/1011, GEHL 664/685/801/744, TAGE 609/617/640/625"
        ),
    )
    specs = [("gshare", PredictorSpec("gshare"))]
    if include_gehl:
        specs.append(("gehl", PredictorSpec("gehl")))
    specs.append(("tage", PredictorSpec("tage")))
    scenarios = [
        UpdateScenario.IMMEDIATE,
        UpdateScenario.REREAD_AT_RETIRE,
        UpdateScenario.FETCH_READ_ONLY,
        UpdateScenario.REREAD_ON_MISPREDICTION,
    ]
    runs = [(spec, scenario, config) for _, spec in specs for scenario in scenarios]
    suites = iter(_suites(runs, traces))
    for name, _ in specs:
        table.rows.append([name] + [next(suites).mppki for _ in scenarios])
    return table


# ---------------------------------------------------------------------------
# E3 — Section 4.3: bank interleaving accuracy and CACTI-style cost
# ---------------------------------------------------------------------------

def run_bank_interleaving(
    traces: list[Trace], config: PipelineConfig | None = None
) -> ExperimentTable:
    """Scenario [C] with and without 4-way single-port interleaving, plus area/energy."""
    table = ExperimentTable(
        experiment="E3 bank-interleaving (Section 4.3)",
        headers=["organisation", "mppki [C]", "area (norm.)", "energy/access (norm.)"],
        paper_reference="627 vs 625 MPPKI; 3.3x area and 2x energy reduction",
    )
    scenario = UpdateScenario.REREAD_ON_MISPREDICTION
    plain = PredictorSpec("tage")
    interleaved = PredictorSpec(
        "augmented-tage", {"use_ium": False, "name": "tage-interleaved", "interleaved": True}
    )
    plain_suite, inter_suite = _suites(
        [(plain, scenario, config), (interleaved, scenario, config)], traces
    )
    cost = PredictorCostModel(storage_bits=TAGEPredictor().storage_bits)
    three_port = cost.three_port_array()
    banked = cost.interleaved_array()
    table.add_row("3-port arrays", plain_suite.mppki, three_port.area, three_port.energy_per_access)
    table.add_row("4-way single-port banks", inter_suite.mppki, banked.area, banked.energy_per_access)
    table.add_row(
        "reduction (3-port / banked)",
        plain_suite.mppki / inter_suite.mppki if inter_suite.mppki else 0.0,
        cost.area_reduction,
        cost.energy_reduction_per_access,
    )
    return table


# ---------------------------------------------------------------------------
# E4 — Section 5.1: IUM recovery of the delayed-update losses
# ---------------------------------------------------------------------------

def run_ium_recovery(
    traces: list[Trace], config: PipelineConfig | None = None
) -> ExperimentTable:
    """TAGE vs TAGE+IUM under scenarios [I]/[A]/[B]/[C]."""
    table = ExperimentTable(
        experiment="E4 ium (Section 5.1)",
        headers=["predictor", "[I]", "[A]", "[B]", "[C]", "ium overrides"],
        paper_reference="TAGE 609/617/640/625; TAGE+IUM 609/611/624/614",
    )
    scenarios = [
        UpdateScenario.IMMEDIATE,
        UpdateScenario.REREAD_AT_RETIRE,
        UpdateScenario.FETCH_READ_ONLY,
        UpdateScenario.REREAD_ON_MISPREDICTION,
    ]
    specs = [
        ("tage", PredictorSpec("tage")),
        ("tage+ium", PredictorSpec("augmented-tage", {"use_ium": True, "name": "tage+ium"})),
    ]
    runs = [(spec, scenario, config) for _, spec in specs for scenario in scenarios]
    suites = iter(_suites(runs, traces))
    for name, _ in specs:
        row = [name]
        overrides = 0
        for _ in scenarios:
            suite = next(suites)
            row.append(suite.mppki)
            overrides += sum(result.ium_overrides for result in suite.results)
        row.append(overrides)
        table.rows.append(row)
    return table


# ---------------------------------------------------------------------------
# E5/E6/E7/E8 — Sections 5.2, 5.3, 5.4 and 6: the side-predictor stack
# ---------------------------------------------------------------------------

def run_side_predictor_stack(traces: list[Trace]) -> ExperimentTable:
    """MPPKI of the incremental predictor stack, TAGE up to TAGE-LSC.

    Reproduces the accuracy ladder of Sections 5 and 6: TAGE, TAGE+IUM,
    +loop (L-TAGE style), +SC (= ISL-TAGE), the paper's TAGE-LSC and the
    full TAGE+IUM+loop+SC+LSC stack.
    """
    table = ExperimentTable(
        experiment="E5-E8 side-predictor stack (Sections 5.2-6.1)",
        headers=["predictor", "mppki", "mispredictions", "storage Kbits"],
        paper_reference=(
            "TAGE+IUM ~609-617, +loop 593, +SC 580 (ISL-TAGE), "
            "TAGE-LSC 555-562, ISL-TAGE(512Kb) 581"
        ),
    )
    specs = [
        ("tage", PredictorSpec("tage")),
        ("tage+ium", PredictorSpec("augmented-tage", {"use_ium": True, "name": "tage+ium"})),
        ("l-tage (tage+loop)", PredictorSpec("l-tage")),
        ("tage+ium+loop", PredictorSpec("isl-tage", {"use_sc": False})),
        ("isl-tage (tage+ium+loop+sc)", PredictorSpec("isl-tage")),
        ("tage-lsc (tage+ium+lsc)", PredictorSpec("tage-lsc", {"fit_512kbits": True})),
        ("tage+ium+loop+sc+lsc", PredictorSpec("tage-lsc", {"use_loop": True, "use_sc": True})),
    ]
    suites = _suites([(spec, UpdateScenario.IMMEDIATE, None) for _, spec in specs], traces)
    for (name, spec), suite in zip(specs, suites):
        predictor = spec.build()
        table.add_row(name, suite.mppki, suite.mispredictions,
                      round(predictor.storage_bits / 1024.0, 1))
    return table


# ---------------------------------------------------------------------------
# E9 — Section 6.2: robustness to history series and table counts
# ---------------------------------------------------------------------------

def run_history_robustness(traces: list[Trace]) -> ExperimentTable:
    """TAGE-LSC accuracy for different history series and component counts."""
    table = ExperimentTable(
        experiment="E9 history-robustness (Section 6.2)",
        headers=["configuration", "mppki"],
        paper_reference=(
            "(6,2000)x13 -> 562, (3,300) -> 575, (4,1000) -> 563, (8,5000) -> 563, "
            "9-comp (6,1000) -> 566, 6-comp (6,500) -> 583"
        ),
    )
    reference = make_reference_tage_config()
    variants = [
        ("13-comp (6,2000) [reference]", reference),
        ("13-comp (3,300)", reference.with_history_series(3, 300)),
        ("13-comp (4,1000)", reference.with_history_series(4, 1000)),
        ("13-comp (8,5000)", reference.with_history_series(8, 5000)),
        ("9-comp (6,1000)", reference.__class__.generate(
            num_tagged_tables=8, min_history=6, max_history=1000, base_log2_entries=12)),
        ("6-comp (6,500)", reference.__class__.generate(
            num_tagged_tables=5, min_history=6, max_history=500, base_log2_entries=13)),
    ]
    runs = [
        (PredictorSpec("tage-lsc", {"config": config}), UpdateScenario.IMMEDIATE, None)
        for _, config in variants
    ]
    for (name, _), suite in zip(variants, _suites(runs, traces)):
        table.add_row(name, suite.mppki)
    return table


# ---------------------------------------------------------------------------
# E10 — Figure 9: TAGE vs TAGE-LSC across storage budgets
# ---------------------------------------------------------------------------

def run_fig9_size_sweep(
    traces: list[Trace], log2_factors: list[int] | None = None
) -> ExperimentTable:
    """MPPKI of TAGE and TAGE-LSC as every component is scaled by powers of two."""
    table = ExperimentTable(
        experiment="E10 fig9-size-sweep (Figure 9)",
        headers=["log2 scale", "tage Kbits", "tage mppki", "tage-lsc Kbits", "tage-lsc mppki"],
        paper_reference=(
            "TAGE-LSC tracks a 4-8x larger TAGE in the 128-512 Kbit range; "
            "both plateau at 16-32 Mbits"
        ),
    )
    factors = log2_factors if log2_factors is not None else [-2, -1, 0, 1, 2, 3]
    from repro.analysis.sweep import fig9_specs

    pairs = fig9_specs(factors)
    runs = [
        (spec, UpdateScenario.IMMEDIATE, None)
        for _, tage_spec, lsc_spec in pairs
        for spec in (tage_spec, lsc_spec)
    ]
    suites = iter(_suites(runs, traces))
    for factor, tage_spec, lsc_spec in pairs:
        tage_suite, lsc_suite = next(suites), next(suites)
        table.add_row(
            factor,
            round(tage_spec.build().storage_bits / 1024.0),
            tage_suite.mppki,
            round(lsc_spec.build().storage_bits / 1024.0),
            lsc_suite.mppki,
        )
    return table


# ---------------------------------------------------------------------------
# E11 — Figure 10 / Section 6.3: comparison on the hard and easy traces
# ---------------------------------------------------------------------------

def run_fig10_hard_traces(traces: list[Trace]) -> ExperimentTable:
    """ISL-TAGE / TAGE-LSC / OH-SNAP-like / FTL-like on hard vs easy traces."""
    table = ExperimentTable(
        experiment="E11 fig10-hard-benchmarks (Figure 10, Section 6.3)",
        headers=["predictor", "mppki (7 hard)", "mppki (33 easy)", "mppki (all)"],
        paper_reference=(
            "hard: ISL 2311, TAGE-LSC 2287, OH-SNAP 2227, FTL++ 2222; "
            "easy: ISL 196, TAGE-LSC 198, OH-SNAP 254, FTL++ 232"
        ),
    )
    specs = [
        ("isl-tage", PredictorSpec("isl-tage")),
        ("tage-lsc", PredictorSpec("tage-lsc", {"fit_512kbits": True})),
        ("oh-snap-like", PredictorSpec("snap")),
        ("ftl-like", PredictorSpec("ftl")),
    ]
    hard_names = {trace.name for trace in traces if trace.hard or trace.name in HARD_TRACES}
    suites = _suites([(spec, UpdateScenario.IMMEDIATE, None) for _, spec in specs], traces)
    for (name, _), suite in zip(specs, suites):
        hard = suite.subset(hard_names)
        easy = suite.subset({trace.name for trace in traces} - hard_names)
        table.add_row(name, hard.mppki, easy.mppki, suite.mppki)
    return table


# ---------------------------------------------------------------------------
# E12 — Section 7: cost-effective TAGE-LSC
# ---------------------------------------------------------------------------

def run_cost_effective(
    traces: list[Trace], config: PipelineConfig | None = None
) -> ExperimentTable:
    """The Section 7 ladder: interleaving and retire-read elimination on TAGE-LSC."""
    table = ExperimentTable(
        experiment="E12 cost-effective TAGE-LSC (Section 7)",
        headers=["configuration", "scenario", "mppki"],
        paper_reference=(
            "562 baseline [A]; 569 interleaved; 575 interleaved + no retire read [C]; "
            "TAGE-only scope ~+2 MPPKI, local-only ~+4 MPPKI; scenario [B] 599"
        ),
    )

    baseline = PredictorSpec("tage-lsc", {"fit_512kbits": True})

    def interleaved(scope: str = RetireReadScope.ALL) -> PredictorSpec:
        return PredictorSpec(
            "tage-lsc",
            {"fit_512kbits": True, "retire_read_scope": scope, "interleaved": True},
        )

    rows = [
        ("3-port, reread at retire", baseline, UpdateScenario.REREAD_AT_RETIRE),
        ("interleaved, reread at retire", interleaved(), UpdateScenario.REREAD_AT_RETIRE),
        ("interleaved, no reread on correct (all components)", interleaved(),
         UpdateScenario.REREAD_ON_MISPREDICTION),
        ("interleaved, no reread on correct (TAGE components only)",
         interleaved(RetireReadScope.TAGE_ONLY), UpdateScenario.REREAD_ON_MISPREDICTION),
        ("interleaved, no reread on correct (local components only)",
         interleaved(RetireReadScope.LOCAL_ONLY), UpdateScenario.REREAD_ON_MISPREDICTION),
        ("interleaved, fetch-time read only [B]", interleaved(), UpdateScenario.FETCH_READ_ONLY),
    ]
    suites = _suites([(spec, scenario, config) for _, spec, scenario in rows], traces)
    for (name, _, scenario), suite in zip(rows, suites):
        table.add_row(name, scenario.label, suite.mppki)
    return table


# ---------------------------------------------------------------------------
# E13 — Section 2.2: benchmark-set characteristics
# ---------------------------------------------------------------------------

def run_suite_characteristics(traces: list[Trace]) -> ExperimentTable:
    """Share of mispredictions carried by the designated hard traces."""
    table = ExperimentTable(
        experiment="E13 suite characteristics (Section 2.2)",
        headers=["group", "traces", "mispredictions", "share", "mppki"],
        paper_reference="the 7 hard traces carry ~3/4 of all mispredictions",
    )
    suite = _suite(PredictorSpec("l-tage"), traces)
    hard_names = {trace.name for trace in traces if trace.hard or trace.name in HARD_TRACES}
    hard = suite.subset(hard_names)
    easy = suite.subset({trace.name for trace in traces} - hard_names)
    total = suite.mispredictions or 1
    table.add_row("hard", len(hard.results), hard.mispredictions,
                  hard.mispredictions / total, hard.mppki)
    table.add_row("easy", len(easy.results), easy.mispredictions,
                  easy.mispredictions / total, easy.mppki)
    table.add_row("all", len(suite.results), suite.mispredictions, 1.0, suite.mppki)
    return table
