"""Experiment drivers regenerating the paper's tables and figures.

Each experiment of the paper's evaluation (see DESIGN.md's per-experiment
index) has a driver function in :mod:`repro.analysis.experiments` that
takes a list of traces, runs the required simulations and returns a
structured result with a ``to_table()`` rendering.  The benchmark harness
under ``benchmarks/`` is a thin wrapper over these drivers; they can also
be called directly from notebooks or scripts.
"""

from repro.analysis.experiments import (
    ExperimentTable,
    run_access_counts,
    run_bank_interleaving,
    run_cost_effective,
    run_fig9_size_sweep,
    run_fig10_hard_traces,
    run_history_robustness,
    run_ium_recovery,
    run_side_predictor_stack,
    run_suite_characteristics,
    run_update_scenarios,
)
from repro.analysis.reporting import format_table
from repro.analysis.sweep import scaled_tage_config, scaled_tage_lsc

__all__ = [
    "ExperimentTable",
    "format_table",
    "run_access_counts",
    "run_bank_interleaving",
    "run_cost_effective",
    "run_fig9_size_sweep",
    "run_fig10_hard_traces",
    "run_history_robustness",
    "run_ium_recovery",
    "run_side_predictor_stack",
    "run_suite_characteristics",
    "run_update_scenarios",
    "scaled_tage_config",
    "scaled_tage_lsc",
]
