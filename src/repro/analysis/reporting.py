"""Small text-table rendering helpers shared by the experiment drivers."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    Numeric cells are formatted with a sensible default precision; the
    result is what the benchmark harness prints so that every run of a
    bench regenerates the corresponding table of the paper.
    """
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rendered)) if rendered else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
