"""Predictor-size scaling helpers for the Figure 9 sweep.

Figure 9 scales TAGE and TAGE-LSC from 128 Kbits to 32 Mbits "just by
scaling the sizes of all the components by a power of two".  These helpers
produce the scaled configurations/predictors for a given power-of-two
factor relative to the reference (~512 Kbit-class) predictor.

They are also exposed through the predictor registry as the
``scaled-tage`` and ``scaled-tage-lsc`` kinds (config key
``log2_factor``), so sweeps can be described as picklable specs and fanned
out with :class:`~repro.pipeline.parallel.ParallelSuiteRunner`::

    PredictorSpec("scaled-tage-lsc", {"log2_factor": 2})
"""

from __future__ import annotations

from repro.core.composed import TAGELSCPredictor
from repro.core.config import TAGEConfig, make_reference_tage_config
from repro.core.statistical_corrector import StatisticalCorrectorConfig
from repro.core.tage import TAGEPredictor
from repro.predictors.registry import PredictorSpec

__all__ = [
    "fig9_specs",
    "scaled_spec",
    "scaled_tage",
    "scaled_tage_config",
    "scaled_tage_lsc",
]


def scaled_tage_config(log2_factor: int) -> TAGEConfig:
    """Reference TAGE configuration scaled by ``2**log2_factor``."""
    return make_reference_tage_config().scaled(log2_factor)


def scaled_tage(log2_factor: int) -> TAGEPredictor:
    """A TAGE predictor scaled by ``2**log2_factor`` from the reference."""
    return TAGEPredictor(scaled_tage_config(log2_factor))


def scaled_tage_lsc(log2_factor: int) -> TAGELSCPredictor:
    """A TAGE-LSC predictor scaled by ``2**log2_factor`` from the reference.

    Both the TAGE component and the local corrector tables are scaled, as
    Figure 9 does ("scaling the sizes of all the components").
    """
    lsc_log2_entries = max(4, 10 + log2_factor)
    lsc_config = StatisticalCorrectorConfig(
        history_lengths=(0, 4, 10, 17, 31),
        log2_entries=lsc_log2_entries,
        counter_bits=6,
    )
    local_history_entries = max(16, 64 * (2 ** max(0, log2_factor)))
    return TAGELSCPredictor(
        config=scaled_tage_config(log2_factor),
        lsc_config=lsc_config,
        local_history_entries=local_history_entries,
    )


def scaled_spec(kind: str, log2_factor: int) -> PredictorSpec:
    """The registry spec of a scaled predictor: pure data, pool- and JSON-safe.

    ``kind`` is ``"tage"`` or ``"tage-lsc"``; the returned spec names the
    corresponding ``scaled-*`` registry kind, so sweeps travel through the
    run API (:class:`~repro.api.request.RunRequest`) and the parallel
    scheduler without holding live predictors.
    """
    if kind not in ("tage", "tage-lsc"):
        raise ValueError(f"scaled_spec supports 'tage' and 'tage-lsc', got {kind!r}")
    registered = "scaled-tage" if kind == "tage" else "scaled-tage-lsc"
    return PredictorSpec(registered, {"log2_factor": log2_factor})


def fig9_specs(
    log2_factors: list[int],
) -> list[tuple[int, PredictorSpec, PredictorSpec]]:
    """(factor, TAGE spec, TAGE-LSC spec) for every Figure 9 scale point."""
    return [
        (factor, scaled_spec("tage", factor), scaled_spec("tage-lsc", factor))
        for factor in log2_factors
    ]
