"""Storage-budget accounting.

The paper dimensions every predictor against an explicit bit budget
(64 Kbits gshare, 512 Kbits TAGE, 64 KBytes for the CBP-3 contest…).  Every
predictor in this package therefore exposes a ``storage_report()`` built
from the classes below so that experiments can check they compare
predictors at equal cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StorageItem", "StorageReport"]


@dataclass(frozen=True)
class StorageItem:
    """One named contributor to a predictor's storage budget.

    Attributes
    ----------
    name:
        Human-readable component name, e.g. ``"T3 tags"``.
    entries:
        Number of table entries (1 for a scalar register).
    bits_per_entry:
        Width of each entry in bits.
    """

    name: str
    entries: int
    bits_per_entry: int

    @property
    def total_bits(self) -> int:
        """Total bits contributed by this item."""
        return self.entries * self.bits_per_entry


@dataclass
class StorageReport:
    """A collection of :class:`StorageItem` describing a whole predictor."""

    predictor: str
    items: list[StorageItem] = field(default_factory=list)

    def add(self, name: str, entries: int, bits_per_entry: int) -> None:
        """Append one storage contributor."""
        self.items.append(StorageItem(name, entries, bits_per_entry))

    def extend(self, other: "StorageReport", prefix: str = "") -> None:
        """Merge another report into this one, optionally prefixing item names."""
        for item in other.items:
            name = f"{prefix}{item.name}" if prefix else item.name
            self.items.append(StorageItem(name, item.entries, item.bits_per_entry))

    @property
    def total_bits(self) -> int:
        """Total storage in bits."""
        return sum(item.total_bits for item in self.items)

    @property
    def total_kbits(self) -> float:
        """Total storage in kilobits (1 Kbit = 1024 bits)."""
        return self.total_bits / 1024.0

    @property
    def total_bytes(self) -> float:
        """Total storage in bytes."""
        return self.total_bits / 8.0

    def fits_budget(self, budget_bits: int) -> bool:
        """True when the predictor fits within ``budget_bits``."""
        return self.total_bits <= budget_bits

    def to_table(self) -> str:
        """Render the report as a small fixed-width text table."""
        lines = [f"storage report for {self.predictor}"]
        lines.append(f"{'component':<32}{'entries':>10}{'bits/entry':>12}{'total bits':>12}")
        for item in self.items:
            lines.append(
                f"{item.name:<32}{item.entries:>10}{item.bits_per_entry:>12}{item.total_bits:>12}"
            )
        lines.append(f"{'TOTAL':<32}{'':>10}{'':>12}{self.total_bits:>12}")
        return "\n".join(lines)
