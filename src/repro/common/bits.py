"""Bit-manipulation helpers shared by index and tag hash functions.

Branch predictors address their tables with hashes of the program counter
and (folded) branch history.  The helpers in this module keep those hash
functions short and explicit at the call sites.
"""

from __future__ import annotations

__all__ = ["mask", "bit_select", "fold_bits", "mix_hash"]


def mask(width: int) -> int:
    """Return a bit mask with ``width`` low-order bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_select(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    >>> bit_select(0b110100, 2, 3)
    5
    """
    if low < 0 or width < 0:
        raise ValueError("bit_select requires non-negative low and width")
    return (value >> low) & mask(width)


def fold_bits(value: int, input_width: int, output_width: int) -> int:
    """Fold ``input_width`` bits of ``value`` down to ``output_width`` by XOR.

    This mirrors what a hardware "circular shift register" fold computes
    when done combinationally: the input is cut into ``output_width``-bit
    chunks which are XORed together.

    >>> fold_bits(0b1111_0000_1010, 12, 4)
    5
    """
    if output_width <= 0:
        raise ValueError("output_width must be positive")
    value &= mask(input_width)
    folded = 0
    while value:
        folded ^= value & mask(output_width)
        value >>= output_width
    return folded


def mix_hash(*values: int, width: int) -> int:
    """Combine several integers into a ``width``-bit hash.

    The mixing is deliberately simple (shift-XOR, as in published TAGE
    source code) rather than cryptographic: hardware index functions are
    built from a handful of XOR gates.

    >>> 0 <= mix_hash(0x400812, 0x3F, width=10) < 1024
    True
    """
    acc = 0
    for i, value in enumerate(values):
        acc ^= (value >> i) ^ (value << (i + 1))
    return acc & mask(width)
