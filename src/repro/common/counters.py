"""Saturating counters and counter tables.

Almost every structure in a branch predictor is a small saturating counter:
2-bit bimodal counters, 3-bit TAGE prediction counters, 6-bit GEHL weights,
the 4-bit ``USE_ALT_ON_NA`` counter, the 8-bit allocation-throttle counter…
This module provides a scalar :class:`SaturatingCounter` for the singleton
counters and numpy-backed tables for the large arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "clamp",
    "saturating_update",
    "SaturatingCounter",
    "SignedCounterTable",
    "UnsignedCounterTable",
]


def clamp(value: int, lo: int, hi: int) -> int:
    """Clamp ``value`` into the inclusive range ``[lo, hi]``.

    >>> clamp(9, 0, 7)
    7
    """
    if lo > hi:
        raise ValueError(f"invalid clamp range [{lo}, {hi}]")
    return max(lo, min(hi, value))


def saturating_update(value: int, taken: bool, lo: int, hi: int) -> int:
    """Increment ``value`` when ``taken`` else decrement, saturating at the bounds.

    This is the canonical update of every prediction counter in the paper.

    >>> saturating_update(3, True, -4, 3)
    3
    >>> saturating_update(-4, False, -4, 3)
    -4
    """
    return clamp(value + (1 if taken else -1), lo, hi)


@dataclass
class SaturatingCounter:
    """A single saturating up/down counter.

    Parameters
    ----------
    bits:
        Counter width in bits.
    signed:
        When true the range is ``[-2**(bits-1), 2**(bits-1) - 1]`` and the
        *sign* carries the prediction (negative means not-taken).  When
        false the range is ``[0, 2**bits - 1]`` and the *MSB* carries the
        prediction.
    value:
        Initial value; defaults to the weakest not-taken state (0 for
        unsigned counters, -1 for signed counters).
    """

    bits: int
    signed: bool = True
    value: int = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("counter needs at least one bit")
        if self.signed:
            self.lo = -(1 << (self.bits - 1))
            self.hi = (1 << (self.bits - 1)) - 1
        else:
            self.lo = 0
            self.hi = (1 << self.bits) - 1
        if self.value is None:
            self.value = -1 if self.signed else 0
        self.value = clamp(self.value, self.lo, self.hi)

    @property
    def taken(self) -> bool:
        """Prediction carried by the counter (sign or MSB)."""
        if self.signed:
            return self.value >= 0
        return self.value >= (1 << (self.bits - 1))

    @property
    def is_weak(self) -> bool:
        """True when the counter sits in one of its two central states."""
        if self.signed:
            return self.value in (-1, 0)
        mid = 1 << (self.bits - 1)
        return self.value in (mid - 1, mid)

    @property
    def is_saturated(self) -> bool:
        """True when the counter sits at either extreme."""
        return self.value in (self.lo, self.hi)

    def update(self, taken: bool) -> bool:
        """Push the counter toward ``taken``; return True if the value changed."""
        new = saturating_update(self.value, taken, self.lo, self.hi)
        changed = new != self.value
        self.value = new
        return changed

    def increment(self) -> bool:
        """Increment with saturation; return True if the value changed."""
        return self.update(True)

    def decrement(self) -> bool:
        """Decrement with saturation; return True if the value changed."""
        return self.update(False)

    def set(self, value: int) -> None:
        """Force the counter to ``value`` (clamped to the legal range)."""
        self.value = clamp(value, self.lo, self.hi)

    def reset(self) -> None:
        """Return the counter to its weakest not-taken state."""
        self.value = -1 if self.signed else 0

    def centered(self) -> int:
        """Return ``2 * value + 1``, the "centered" value used by GEHL-style adders."""
        return 2 * self.value + 1


class SignedCounterTable:
    """A table of signed saturating counters backed by a numpy array.

    Used for GEHL/SC weight tables and TAGE prediction counters.  Counters
    of width ``bits`` range over ``[-2**(bits-1), 2**(bits-1) - 1]``.
    """

    def __init__(self, entries: int, bits: int, initial: int = 0) -> None:
        if entries <= 0:
            raise ValueError("table needs a positive number of entries")
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.entries = entries
        self.bits = bits
        self.lo = -(1 << (bits - 1))
        self.hi = (1 << (bits - 1)) - 1
        initial = clamp(initial, self.lo, self.hi)
        self._values = np.full(entries, initial, dtype=np.int32)

    def __len__(self) -> int:
        return self.entries

    def __getitem__(self, index: int) -> int:
        return int(self._values[index])

    def __setitem__(self, index: int, value: int) -> None:
        self._values[index] = clamp(int(value), self.lo, self.hi)

    def update(self, index: int, taken: bool) -> bool:
        """Saturating update of one entry; returns True when the entry changed."""
        old = int(self._values[index])
        new = saturating_update(old, taken, self.lo, self.hi)
        self._values[index] = new
        return new != old

    def taken(self, index: int) -> bool:
        """Prediction of one entry (sign bit)."""
        return int(self._values[index]) >= 0

    def centered(self, index: int) -> int:
        """Centered value ``2 * ctr + 1`` of one entry."""
        return 2 * int(self._values[index]) + 1

    def is_weak(self, index: int) -> bool:
        """True when the entry sits in one of the two central states."""
        return int(self._values[index]) in (-1, 0)

    def fill(self, value: int) -> None:
        """Set every entry to ``value`` (clamped)."""
        self._values.fill(clamp(value, self.lo, self.hi))

    @property
    def storage_bits(self) -> int:
        """Total number of storage bits held by the table."""
        return self.entries * self.bits


class UnsignedCounterTable:
    """A table of unsigned saturating counters backed by a numpy array.

    Used for bimodal prediction/hysteresis bits, confidence counters and
    age counters.  Counters of width ``bits`` range over ``[0, 2**bits-1]``
    and predict taken when their MSB is set.
    """

    def __init__(self, entries: int, bits: int, initial: int = 0) -> None:
        if entries <= 0:
            raise ValueError("table needs a positive number of entries")
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.entries = entries
        self.bits = bits
        self.lo = 0
        self.hi = (1 << bits) - 1
        self._values = np.full(entries, clamp(initial, self.lo, self.hi), dtype=np.int32)

    def __len__(self) -> int:
        return self.entries

    def __getitem__(self, index: int) -> int:
        return int(self._values[index])

    def __setitem__(self, index: int, value: int) -> None:
        self._values[index] = clamp(int(value), self.lo, self.hi)

    def update(self, index: int, taken: bool) -> bool:
        """Saturating update of one entry; returns True when the entry changed."""
        old = int(self._values[index])
        new = saturating_update(old, taken, self.lo, self.hi)
        self._values[index] = new
        return new != old

    def taken(self, index: int) -> bool:
        """Prediction of one entry (MSB)."""
        return int(self._values[index]) >= (1 << (self.bits - 1))

    def fill(self, value: int) -> None:
        """Set every entry to ``value`` (clamped)."""
        self._values.fill(clamp(value, self.lo, self.hi))

    @property
    def storage_bits(self) -> int:
        """Total number of storage bits held by the table."""
        return self.entries * self.bits
