"""Shared low-level building blocks used across the predictor implementations.

The module groups the small hardware-flavoured primitives that every branch
predictor in this package is built from:

* saturating counters (signed and unsigned), both as scalar helpers and as
  array-backed tables (:mod:`repro.common.counters`),
* bit-manipulation helpers used by index/tag hash functions
  (:mod:`repro.common.bits`),
* storage accounting helpers used to size predictors against a bit budget
  (:mod:`repro.common.storage`).
"""

from repro.common.bits import bit_select, fold_bits, mask, mix_hash
from repro.common.counters import (
    SaturatingCounter,
    SignedCounterTable,
    UnsignedCounterTable,
    clamp,
    saturating_update,
)
from repro.common.storage import StorageItem, StorageReport

__all__ = [
    "SaturatingCounter",
    "SignedCounterTable",
    "StorageItem",
    "StorageReport",
    "UnsignedCounterTable",
    "bit_select",
    "clamp",
    "fold_bits",
    "mask",
    "mix_hash",
    "saturating_update",
]
