"""An in-process broker: the reference implementation and the test rig.

Every structure lives behind one lock, so the memory broker is safe for
any number of front-end and worker *threads* within one process — which
is exactly what the unit tests and the single-host composition
(``SimulationService`` + in-thread ``FleetWorker``) need.  It cannot
span processes; deploys use :class:`~repro.distrib.fsbroker.FileBroker`
or the optional redis broker, which implement the same semantics.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.distrib.broker import (
    Broker,
    BrokerError,
    Lease,
    LeaseLostError,
    UnknownBrokerJobError,
    worker_view,
)

__all__ = ["MemoryBroker"]


class MemoryBroker(Broker):
    """Dicts + one lock; see :class:`~repro.distrib.broker.Broker`."""

    def __init__(self, **policy: Any) -> None:
        super().__init__(**policy)
        self._lock = threading.RLock()
        self._seq = itertools.count()
        self._jobs: dict[str, dict] = {}
        #: Deliverable tickets: {"id", "attempt", "not_before", "seq"}.
        self._pending: list[dict] = []
        self._leases: dict[str, dict] = {}
        self._done: dict[str, dict] = {}
        self._dead: dict[str, dict] = {}
        self._cancelled: dict[str, float] = {}
        self._workers: dict[str, dict] = {}
        #: Trace spans shipped by executing attempts, accumulated per
        #: job (every attempt files, so re-deliveries become siblings).
        self._spans: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def publish(self, job_id: str, payload: dict, max_attempts: int | None = None) -> None:
        with self._lock:
            if job_id in self._jobs:
                raise BrokerError(f"job {job_id!r} is already published")
            self._jobs[job_id] = {
                "id": job_id,
                "payload": payload,
                "max_attempts": max_attempts or self.max_attempts,
                "created": self._now(),
                "error": None,
            }
            self._enqueue(job_id, attempt=1, not_before=self._now())
        self._note("published")

    def _enqueue(self, job_id: str, attempt: int, not_before: float) -> None:
        self._pending.append(
            {"id": job_id, "attempt": attempt, "not_before": not_before,
             "seq": next(self._seq)}
        )
        self._pending.sort(key=lambda ticket: (ticket["not_before"], ticket["seq"]))

    def lease(self, worker_id: str) -> Lease | None:
        with self._lock:
            self.reap()
            now = self._now()
            for index, ticket in enumerate(self._pending):
                if ticket["not_before"] > now:
                    continue
                del self._pending[index]
                deadline = now + self.visibility
                self._leases[ticket["id"]] = {
                    "worker": worker_id,
                    "attempt": ticket["attempt"],
                    "deadline": deadline,
                }
                job = self._jobs[ticket["id"]]
                self._note("leased")
                return Lease(ticket["id"], job["payload"], ticket["attempt"],
                             deadline, worker_id)
            return None

    def heartbeat(self, job_id: str, worker_id: str) -> float:
        with self._lock:
            lease = self._leases.get(job_id)
            if lease is None or lease["worker"] != worker_id:
                raise LeaseLostError(f"worker {worker_id!r} no longer holds job {job_id!r}")
            lease["deadline"] = self._now() + self.visibility
            return lease["deadline"]

    def complete(self, job_id: str, worker_id: str, results: Any,
                 spans: list | None = None) -> bool:
        with self._lock:
            if job_id not in self._jobs:
                raise UnknownBrokerJobError(job_id)
            if spans:
                self._spans.setdefault(job_id, []).extend(spans)
            if job_id in self._done:
                # First write won already (a re-delivered twin finished
                # earlier); drop our lease if we still hold one.
                self._drop_lease(job_id, worker_id)
                return False
            lease = self._leases.get(job_id)
            attempt = lease["attempt"] if lease else None
            self._done[job_id] = {
                "results": results,
                "worker": worker_id,
                "attempt": attempt,
                "finished": self._now(),
            }
            self._drop_lease(job_id, worker_id)
            self._discard_pending(job_id)
        self._note("completed")
        return True

    def fail(self, job_id: str, worker_id: str, error: str,
             spans: list | None = None) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownBrokerJobError(job_id)
            if spans:
                self._spans.setdefault(job_id, []).extend(spans)
            if job_id in self._done or job_id in self._dead:
                return  # already terminal; a late failure report is moot
            lease = self._leases.get(job_id)
            attempt = lease["attempt"] if lease else 1
            self._drop_lease(job_id, worker_id)
            job["error"] = error
            if attempt >= job["max_attempts"]:
                self._dead[job_id] = {
                    "error": error,
                    "attempts": attempt,
                    "finished": self._now(),
                }
                dead = True
            else:
                self._enqueue(job_id, attempt + 1,
                              self._now() + self.backoff(attempt))
                dead = False
        self._note("dead_lettered" if dead else "retried")

    def cancel(self, job_id: str) -> bool:
        with self._lock:
            if job_id not in self._jobs:
                raise UnknownBrokerJobError(job_id)
            for index, ticket in enumerate(self._pending):
                if ticket["id"] == job_id:
                    del self._pending[index]
                    self._cancelled[job_id] = self._now()
                    return True
            return False

    def reap(self) -> int:
        dead = 0
        with self._lock:
            now = self._now()
            reaped = 0
            for job_id, lease in list(self._leases.items()):
                if lease["deadline"] >= now:
                    continue
                del self._leases[job_id]
                reaped += 1
                job = self._jobs[job_id]
                attempt = lease["attempt"]
                error = (f"lease expired after attempt {attempt} "
                         f"(worker {lease['worker']})")
                job["error"] = error
                if attempt >= job["max_attempts"]:
                    self._dead[job_id] = {
                        "error": error, "attempts": attempt, "finished": now,
                    }
                    dead += 1
                else:
                    self._enqueue(job_id, attempt + 1, now + self.backoff(attempt))
        self._note("reaped", reaped - dead)
        self._note("dead_lettered", dead)
        return reaped

    def _drop_lease(self, job_id: str, worker_id: str) -> None:
        lease = self._leases.get(job_id)
        if lease is not None and lease["worker"] == worker_id:
            del self._leases[job_id]

    def _discard_pending(self, job_id: str) -> None:
        self._pending = [t for t in self._pending if t["id"] != job_id]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self, job_id: str) -> dict[str, Any]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownBrokerJobError(job_id)
            base = {
                "id": job_id,
                "created": job["created"],
                "max_attempts": job["max_attempts"],
                "error": job["error"],
            }
            done = self._done.get(job_id)
            if done is not None:
                return {**base, "state": "done", "attempts": done["attempt"],
                        "worker": done["worker"], "results": done["results"],
                        "finished": done["finished"], "error": None,
                        "spans": list(self._spans.get(job_id, ()))}
            dead = self._dead.get(job_id)
            if dead is not None:
                return {**base, "state": "dead", "attempts": dead["attempts"],
                        "worker": None, "results": None,
                        "finished": dead["finished"], "error": dead["error"],
                        "spans": list(self._spans.get(job_id, ()))}
            if job_id in self._cancelled:
                return {**base, "state": "cancelled", "attempts": 0,
                        "worker": None, "results": None,
                        "finished": self._cancelled[job_id]}
            lease = self._leases.get(job_id)
            if lease is not None:
                return {**base, "state": "leased", "attempts": lease["attempt"],
                        "worker": lease["worker"], "results": None,
                        "deadline": lease["deadline"], "finished": None}
            for ticket in self._pending:
                if ticket["id"] == job_id:
                    return {**base, "state": "pending",
                            "attempts": ticket["attempt"] - 1, "worker": None,
                            "results": None, "not_before": ticket["not_before"],
                            "finished": None}
            # Transiently between states (shouldn't persist): report pending.
            return {**base, "state": "pending", "attempts": None, "worker": None,
                    "results": None, "finished": None}

    def counts(self) -> dict[str, int]:
        with self._lock:
            return {
                "pending": len(self._pending),
                "leased": len(self._leases),
                "done": len(self._done),
                "dead": len(self._dead),
                "cancelled": len(self._cancelled),
            }

    def dead_letters(self, limit: int = 20) -> list[dict[str, Any]]:
        with self._lock:
            rows = [
                {"id": job_id, "error": entry["error"],
                 "attempts": entry["attempts"], "finished": entry["finished"]}
                for job_id, entry in self._dead.items()
            ]
        rows.sort(key=lambda row: row["finished"], reverse=True)
        return rows[:limit]

    def describe(self) -> str:
        return "memory"

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------

    def register_worker(self, worker_id: str, capabilities: dict[str, Any]) -> None:
        with self._lock:
            now = self._now()
            self._workers[worker_id] = {
                "id": worker_id,
                "capabilities": capabilities,
                "started": now,
                "heartbeat": now,
                "completed": 0,
                "failed": 0,
            }

    def worker_heartbeat(
        self,
        worker_id: str,
        completed: int | None = None,
        failed: int | None = None,
        metrics: dict[str, Any] | None = None,
    ) -> None:
        with self._lock:
            record = self._workers.get(worker_id)
            if record is None:
                raise BrokerError(f"worker {worker_id!r} is not registered")
            record["heartbeat"] = self._now()
            if completed is not None:
                record["completed"] = completed
            if failed is not None:
                record["failed"] = failed
            if metrics is not None:
                record["metrics"] = metrics

    def deregister_worker(self, worker_id: str) -> None:
        with self._lock:
            self._workers.pop(worker_id, None)

    def workers(self) -> list[dict[str, Any]]:
        with self._lock:
            now = self._now()
            return [
                worker_view(record, now, self.worker_ttl)
                for _, record in sorted(self._workers.items())
            ]
