"""A filesystem broker: one shared directory, many processes and hosts.

No server, no new dependencies: the broker *is* a directory (local for a
multi-process deployment, NFS/EFS-style for multi-host), and the POSIX
rename is the concurrency primitive.  Layout::

    <root>/jobs/<id>.json       immutable job record (payload, attempt budget)
    <root>/pending/<key>.json   deliverable tickets; the sorted file name
                                encodes delivery order (not-before ms, attempt)
    <root>/leased/<id>.json     live leases (worker, attempt, deadline)
    <root>/done/<id>.json       results — created with os.link, so exactly
                                one completion ever wins
    <root>/dead/<id>.json       dead-lettered jobs (last error, attempts)
    <root>/cancelled/<id>.json  cancelled-before-delivery markers
    <root>/workers/<id>.json    worker registrations + heartbeats
    <root>/spans/<id>.*.json    per-attempt trace spans, one file per
                                completion/failure report (re-delivered
                                attempts file siblings, never append)
    <root>/tmp/                 scratch for atomic writes

Claiming a job is ``os.rename(pending/<ticket>, leased/<id>.json)`` —
atomic on every POSIX filesystem, so exactly one worker wins however
many race; the loser gets ``FileNotFoundError`` and moves on.
Completion writes a scratch file and ``os.link``\\ s it to
``done/<id>.json`` — the link fails with ``FileExistsError`` when a
re-delivered twin finished first, which is exactly the duplicate-
completion no-op the protocol requires.  Every other mutation is a
write-to-scratch + ``os.replace``.

All state transitions are crash-safe: a worker that dies at any point
leaves either a pending ticket (never claimed) or a leased file whose
deadline lapses, and :meth:`FileBroker.reap` (run opportunistically by
every ``lease`` call and by the front end's watcher) re-queues it with
backoff or dead-letters it once the attempt budget is spent.
"""

from __future__ import annotations

import itertools
import json
import os
import re
from typing import Any

from repro.distrib.broker import (
    Broker,
    BrokerError,
    Lease,
    LeaseLostError,
    UnknownBrokerJobError,
    worker_view,
)

__all__ = ["FileBroker"]

_SAFE_ID = re.compile(r"^[A-Za-z0-9._-]+$")
_DIRS = ("jobs", "pending", "leased", "done", "dead", "cancelled", "workers",
         "spans", "tmp")


class FileBroker(Broker):
    """Shared-directory broker; see the module docstring for the layout."""

    def __init__(self, root: str, **policy: Any) -> None:
        super().__init__(**policy)
        self.root = os.path.abspath(root)
        for name in _DIRS:
            os.makedirs(os.path.join(self.root, name), exist_ok=True)
        self._scratch_seq = itertools.count()

    def describe(self) -> str:
        return f"file:{self.root}"

    # ------------------------------------------------------------------
    # Path and file helpers
    # ------------------------------------------------------------------

    def _path(self, kind: str, name: str) -> str:
        if not _SAFE_ID.match(name):
            raise ValueError(f"invalid broker id {name!r}")
        return os.path.join(self.root, kind, f"{name}.json")

    def _scratch(self, label: str) -> str:
        return os.path.join(
            self.root, "tmp", f"{label}.{os.getpid()}.{next(self._scratch_seq)}"
        )

    def _write(self, path: str, document: dict) -> None:
        scratch = self._scratch(os.path.basename(path))
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(scratch, path)

    def _write_exclusive(self, path: str, document: dict) -> bool:
        """Atomically create ``path``; ``False`` when it already exists."""
        scratch = self._scratch(os.path.basename(path))
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        try:
            os.link(scratch, path)
            return True
        except FileExistsError:
            return False
        finally:
            os.unlink(scratch)

    @staticmethod
    def _read(path: str) -> dict | None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    # -- pending tickets -----------------------------------------------

    def _ticket_name(self, not_before: float, attempt: int, job_id: str) -> str:
        # The sorted listing of pending/ IS the delivery order: earliest
        # not-before first, FIFO within a millisecond via the id suffix.
        return f"{int(not_before * 1000):013d}-{attempt:03d}-{job_id}.json"

    @staticmethod
    def _ticket_job_id(name: str) -> str | None:
        if not name.endswith(".json"):
            return None
        parts = name[:-5].split("-", 2)
        return parts[2] if len(parts) == 3 else None

    def _enqueue(self, job_id: str, attempt: int, not_before: float,
                 error: str | None) -> None:
        name = self._ticket_name(not_before, attempt, job_id)
        self._write(
            os.path.join(self.root, "pending", name),
            {"id": job_id, "attempt": attempt, "not_before": not_before,
             "error": error},
        )

    def _pending_tickets(self) -> list[str]:
        return sorted(os.listdir(os.path.join(self.root, "pending")))

    def _find_ticket(self, job_id: str) -> str | None:
        for name in self._pending_tickets():
            if self._ticket_job_id(name) == job_id:
                return name
        return None

    def _terminal_state(self, job_id: str) -> str | None:
        for state in ("done", "dead", "cancelled"):
            if os.path.exists(self._path(state, job_id)):
                return state
        return None

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def publish(self, job_id: str, payload: dict, max_attempts: int | None = None) -> None:
        record_path = self._path("jobs", job_id)
        now = self._now()
        created = self._write_exclusive(record_path, {
            "id": job_id,
            "payload": payload,
            "max_attempts": max_attempts or self.max_attempts,
            "created": now,
        })
        if not created:
            raise BrokerError(f"job {job_id!r} is already published")
        self._enqueue(job_id, attempt=1, not_before=now, error=None)
        self._note("published")

    def lease(self, worker_id: str) -> Lease | None:
        self.reap()
        now = self._now()
        for name in self._pending_tickets():
            job_id = self._ticket_job_id(name)
            if job_id is None:
                continue
            ticket_path = os.path.join(self.root, "pending", name)
            ticket = self._read(ticket_path)
            if ticket is None:
                continue  # claimed (and removed) by a racing worker
            if ticket["not_before"] > now:
                continue
            lease_path = self._path("leased", job_id)
            try:
                # THE claim: atomic, exactly one winner per ticket.
                os.rename(ticket_path, lease_path)
            except FileNotFoundError:
                continue
            if self._terminal_state(job_id) is not None:
                # A stale ticket for an already-finished job (e.g. it was
                # completed after a reap re-queued it): discard quietly.
                self._remove(lease_path)
                continue
            record = self._read(self._path("jobs", job_id))
            if record is None:
                self._remove(lease_path)
                continue
            deadline = now + self.visibility
            self._write(lease_path, {
                "id": job_id,
                "attempt": ticket["attempt"],
                "worker": worker_id,
                "deadline": deadline,
            })
            self._note("leased")
            return Lease(job_id, record["payload"], ticket["attempt"],
                         deadline, worker_id)
        return None

    def heartbeat(self, job_id: str, worker_id: str) -> float:
        lease_path = self._path("leased", job_id)
        lease = self._read(lease_path)
        if lease is None or lease.get("worker") != worker_id:
            raise LeaseLostError(f"worker {worker_id!r} no longer holds job {job_id!r}")
        lease["deadline"] = self._now() + self.visibility
        self._write(lease_path, lease)
        return lease["deadline"]

    def complete(self, job_id: str, worker_id: str, results: Any,
                 spans: list | None = None) -> bool:
        if not os.path.exists(self._path("jobs", job_id)):
            raise UnknownBrokerJobError(job_id)
        self._file_spans(job_id, spans)
        lease = self._read(self._path("leased", job_id))
        attempt = lease["attempt"] if lease and lease.get("worker") == worker_id else None
        won = self._write_exclusive(self._path("done", job_id), {
            "results": results,
            "worker": worker_id,
            "attempt": attempt,
            "finished": self._now(),
        })
        self._release(job_id, worker_id)
        if won:
            # A reaper may have re-queued the job while we were finishing
            # it; the ticket is now stale and must not be delivered.
            ticket = self._find_ticket(job_id)
            if ticket is not None:
                self._remove(os.path.join(self.root, "pending", ticket))
            self._note("completed")
        return won

    def fail(self, job_id: str, worker_id: str, error: str,
             spans: list | None = None) -> None:
        record = self._read(self._path("jobs", job_id))
        if record is None:
            raise UnknownBrokerJobError(job_id)
        self._file_spans(job_id, spans)
        lease = self._take_lease(job_id, worker_id)
        if lease is None:
            # Lease already reaped/re-delivered: that delivery owns the
            # retry accounting now, a late failure report changes nothing.
            return
        attempt = lease["attempt"]
        if attempt >= record["max_attempts"]:
            self._write_exclusive(self._path("dead", job_id), {
                "error": error, "attempts": attempt, "finished": self._now(),
            })
            self._note("dead_lettered")
        else:
            self._enqueue(job_id, attempt + 1,
                          self._now() + self.backoff(attempt), error)
            self._note("retried")

    def cancel(self, job_id: str) -> bool:
        if not os.path.exists(self._path("jobs", job_id)):
            raise UnknownBrokerJobError(job_id)
        name = self._find_ticket(job_id)
        if name is None:
            return False
        takeover = self._scratch(job_id)
        try:
            os.rename(os.path.join(self.root, "pending", name), takeover)
        except FileNotFoundError:
            return False  # leased in the race window
        self._remove(takeover)
        self._write_exclusive(self._path("cancelled", job_id),
                              {"finished": self._now()})
        return True

    def reap(self) -> int:
        now = self._now()
        leased_dir = os.path.join(self.root, "leased")
        reaped = 0
        for name in sorted(os.listdir(leased_dir)):
            lease_path = os.path.join(leased_dir, name)
            lease = self._read(lease_path)
            if lease is None:
                continue
            deadline = lease.get("deadline")
            if deadline is None:
                # Mid-claim (ticket renamed, content not yet rewritten):
                # grant the claimer a full visibility window from mtime.
                try:
                    deadline = os.path.getmtime(lease_path) + self.visibility
                except OSError:
                    continue
            if deadline >= now:
                continue
            takeover = self._scratch(f"reap-{name}")
            try:
                os.rename(lease_path, takeover)
            except FileNotFoundError:
                continue  # completed or reaped concurrently
            self._remove(takeover)
            job_id = lease.get("id") or name[:-5]
            if self._terminal_state(job_id) is not None or self._find_ticket(job_id):
                continue  # ghost lease (e.g. a heartbeat raced a reap)
            reaped += 1
            record = self._read(self._path("jobs", job_id)) or {}
            attempt = lease.get("attempt", 1)
            error = (f"lease expired after attempt {attempt} "
                     f"(worker {lease.get('worker', '?')})")
            if attempt >= record.get("max_attempts", self.max_attempts):
                self._write_exclusive(self._path("dead", job_id), {
                    "error": error, "attempts": attempt, "finished": now,
                })
                self._note("dead_lettered")
            else:
                self._enqueue(job_id, attempt + 1, now + self.backoff(attempt), error)
                self._note("reaped")
        return reaped

    def _release(self, job_id: str, worker_id: str) -> None:
        """Remove our lease file, tolerating every race."""
        self._take_lease(job_id, worker_id)

    def _file_spans(self, job_id: str, spans: list | None) -> None:
        """Persist one attempt's spans next to (never inside) the results.

        Each report gets its own uniquely-named file — no shared-file
        append, so concurrent completions of an expired-lease twin file
        as genuine siblings with zero coordination.
        """
        if not spans:
            return
        name = f"{job_id}.{os.getpid()}.{next(self._scratch_seq)}.json"
        self._write(os.path.join(self.root, "spans", name), {"spans": spans})

    def _job_spans(self, job_id: str) -> list:
        """Concatenate every attempt's span file for ``job_id``."""
        directory = os.path.join(self.root, "spans")
        prefix = f"{job_id}."
        collected: list = []
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return collected
        for name in names:
            if not (name.startswith(prefix) and name.endswith(".json")):
                continue
            entry = self._read(os.path.join(directory, name))
            if entry:
                collected.extend(entry.get("spans", ()))
        return collected

    def _take_lease(self, job_id: str, worker_id: str) -> dict | None:
        """Atomically remove ``worker_id``'s lease and return its content.

        Rename-then-verify: if the file turns out to belong to another
        worker (the lease expired and was re-delivered between our read
        and our rename), it is put back untouched and ``None`` returned.
        """
        lease_path = self._path("leased", job_id)
        takeover = self._scratch(job_id)
        try:
            os.rename(lease_path, takeover)
        except FileNotFoundError:
            return None
        lease = self._read(takeover)
        if lease is None or lease.get("worker") != worker_id:
            try:
                os.rename(takeover, lease_path)
            except OSError:
                self._remove(takeover)
            return None
        self._remove(takeover)
        return lease

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self, job_id: str) -> dict[str, Any]:
        record = self._read(self._path("jobs", job_id))
        if record is None:
            raise UnknownBrokerJobError(job_id)
        base = {
            "id": job_id,
            "created": record["created"],
            "max_attempts": record["max_attempts"],
            "error": None,
        }
        done = self._read(self._path("done", job_id))
        if done is not None:
            return {**base, "state": "done", "attempts": done["attempt"],
                    "worker": done["worker"], "results": done["results"],
                    "finished": done["finished"],
                    "spans": self._job_spans(job_id)}
        dead = self._read(self._path("dead", job_id))
        if dead is not None:
            return {**base, "state": "dead", "attempts": dead["attempts"],
                    "worker": None, "results": None,
                    "finished": dead["finished"], "error": dead["error"],
                    "spans": self._job_spans(job_id)}
        cancelled = self._read(self._path("cancelled", job_id))
        if cancelled is not None:
            return {**base, "state": "cancelled", "attempts": 0, "worker": None,
                    "results": None, "finished": cancelled["finished"]}
        lease = self._read(self._path("leased", job_id))
        if lease is not None and "worker" in lease:
            return {**base, "state": "leased", "attempts": lease["attempt"],
                    "worker": lease["worker"], "results": None,
                    "deadline": lease["deadline"], "finished": None}
        name = self._find_ticket(job_id)
        if name is not None:
            ticket = self._read(os.path.join(self.root, "pending", name))
            if ticket is not None:
                return {**base, "state": "pending",
                        "attempts": ticket["attempt"] - 1, "worker": None,
                        "results": None, "not_before": ticket["not_before"],
                        "error": ticket.get("error"), "finished": None}
        return {**base, "state": "pending", "attempts": None, "worker": None,
                "results": None, "finished": None}

    def counts(self) -> dict[str, int]:
        out = {}
        for state, kind in (("pending", "pending"), ("leased", "leased"),
                            ("done", "done"), ("dead", "dead"),
                            ("cancelled", "cancelled")):
            try:
                out[state] = sum(
                    1 for entry in os.listdir(os.path.join(self.root, kind))
                    if entry.endswith(".json")
                )
            except OSError:
                out[state] = 0
        return out

    def dead_letters(self, limit: int = 20) -> list[dict[str, Any]]:
        directory = os.path.join(self.root, "dead")
        rows = []
        try:
            names = os.listdir(directory)
        except OSError:
            return rows
        for name in names:
            if not name.endswith(".json"):
                continue
            entry = self._read(os.path.join(directory, name))
            if entry is not None:
                rows.append({
                    "id": name[:-5],
                    "error": entry.get("error"),
                    "attempts": entry.get("attempts"),
                    "finished": entry.get("finished"),
                })
        rows.sort(key=lambda row: row["finished"] or 0, reverse=True)
        return rows[:limit]

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------

    def register_worker(self, worker_id: str, capabilities: dict[str, Any]) -> None:
        now = self._now()
        self._write(self._path("workers", worker_id), {
            "id": worker_id,
            "capabilities": capabilities,
            "started": now,
            "heartbeat": now,
            "completed": 0,
            "failed": 0,
        })

    def worker_heartbeat(
        self,
        worker_id: str,
        completed: int | None = None,
        failed: int | None = None,
        metrics: dict[str, Any] | None = None,
    ) -> None:
        path = self._path("workers", worker_id)
        record = self._read(path)
        if record is None:
            raise BrokerError(f"worker {worker_id!r} is not registered")
        record["heartbeat"] = self._now()
        if completed is not None:
            record["completed"] = completed
        if failed is not None:
            record["failed"] = failed
        if metrics is not None:
            record["metrics"] = metrics
        self._write(path, record)

    def deregister_worker(self, worker_id: str) -> None:
        self._remove(self._path("workers", worker_id))

    def workers(self) -> list[dict[str, Any]]:
        now = self._now()
        directory = os.path.join(self.root, "workers")
        views = []
        for name in sorted(os.listdir(directory)):
            record = self._read(os.path.join(directory, name))
            if record is not None:
                views.append(worker_view(record, now, self.worker_ttl))
        return views
