"""The stateless fleet worker: lease, execute, heartbeat, complete.

``repro worker`` runs one :class:`FleetWorker` per process.  The worker
owns a persistent :class:`~repro.api.runner.Runner` (warm process pool,
shared result cache), registers with the broker under capability tags
(live execution backends, core count, host/pid), and loops:

1. :meth:`~repro.distrib.broker.Broker.lease` a job (reaping expired
   leases opportunistically on the way),
2. execute its requests as one ``Runner.run_batch`` call — the same
   code path as ``repro run`` and the single-process service, so fleet
   results are byte-identical to local ones,
3. heartbeat from a background thread while the batch runs, so a long
   job never loses its lease while a *dead* worker loses it within one
   visibility timeout,
4. :meth:`~repro.distrib.broker.Broker.complete` (first write wins — a
   re-delivered twin finishing later is a quiet no-op) or
   :meth:`~repro.distrib.broker.Broker.fail` (retry with backoff, then
   dead-letter).

Drain semantics: :meth:`FleetWorker.request_stop` (wired to SIGTERM and
SIGINT by the CLI) stops *leasing*; the in-flight job finishes and its
lease is completed before the loop exits and the worker deregisters.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
import uuid
from typing import Any

import repro
from repro.api.request import RunRequest
from repro.api.results import suite_payload
from repro.api.runner import Runner
from repro.backends import available_backends
from repro.distrib.broker import Broker, Lease, LeaseLostError
from repro.obs import (
    bind_span_context,
    bind_trace_id,
    drain_spans,
    get_logger,
    get_metrics,
    log_event,
    span,
)

__all__ = ["FleetWorker", "default_capabilities", "new_worker_id"]

#: Idle poll interval between empty lease attempts, seconds.
DEFAULT_POLL_INTERVAL = 0.2

_LOG = get_logger("distrib.worker")


def _job_counter():
    return get_metrics().counter(
        "repro_worker_jobs_total",
        "Jobs processed by this fleet worker, by outcome.",
        ("outcome",),
    )


def _execute_seconds():
    return get_metrics().histogram(
        "repro_worker_execute_seconds",
        "Wall time of one leased job's run_batch execution.",
    )


def _obs_errors():
    return get_metrics().counter(
        "repro_obs_errors_total",
        "Exceptions swallowed by background threads, by component.",
        ("component",),
    )


def new_worker_id() -> str:
    """A fleet-unique, filesystem-safe worker id (host, pid, nonce)."""
    host = socket.gethostname().split(".")[0] or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def default_capabilities(runner: Runner) -> dict[str, Any]:
    """The capability tags a worker registers with."""
    return {
        "backends": list(available_backends()),
        "cores": os.cpu_count() or 1,
        "pool_workers": runner.config.workers,
        "version": repro.__version__,
        "host": socket.gethostname(),
        "pid": os.getpid(),
    }


class FleetWorker:
    """One worker process' broker loop; see the module docstring.

    Parameters
    ----------
    broker:
        Any :class:`~repro.distrib.broker.Broker`.
    runner:
        Defaults to an env-configured persistent runner; the worker owns
        it and closes it when the loop exits.
    worker_id:
        Defaults to a generated host-pid-nonce id.
    poll_interval:
        Idle sleep between empty lease attempts.
    heartbeat_interval:
        Lease-extension period while executing; defaults to a third of
        the broker's visibility timeout.
    """

    def __init__(
        self,
        broker: Broker,
        runner: Runner | None = None,
        worker_id: str | None = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        heartbeat_interval: float | None = None,
    ) -> None:
        self.broker = broker
        self.runner = runner if runner is not None else Runner.from_env(persistent=True)
        self.worker_id = worker_id or new_worker_id()
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None
            else max(broker.visibility / 3.0, 0.05)
        )
        self.completed = 0
        self.failed = 0
        self._stop = threading.Event()
        self._registered = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Graceful drain: stop leasing; the in-flight job still finishes."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def run(self, max_jobs: int | None = None) -> int:
        """Register and loop until drained; returns jobs processed.

        ``max_jobs`` bounds the loop (smoke tests, batch-mode fleets);
        ``None`` runs until :meth:`request_stop`.
        """
        self.broker.register_worker(self.worker_id, default_capabilities(self.runner))
        self._registered = True
        log_event(_LOG, logging.INFO, "worker registered",
                  worker=self.worker_id, broker=self.broker.describe())
        processed = 0
        try:
            while not self._stop.is_set():
                if max_jobs is not None and processed >= max_jobs:
                    break
                lease = self.broker.lease(self.worker_id)
                if lease is None:
                    self._touch_registration()
                    if self._stop.wait(self.poll_interval):
                        break
                    continue
                self._execute(lease)
                processed += 1
                self._touch_registration()
        finally:
            if self._registered:
                try:
                    self.broker.deregister_worker(self.worker_id)
                except Exception as error:  # noqa: BLE001 - deregistration is best-effort
                    _obs_errors().inc(component="worker.deregister")
                    log_event(_LOG, logging.WARNING, "worker deregistration failed",
                              worker=self.worker_id, error=repr(error))
                self._registered = False
            self.runner.close()
        log_event(_LOG, logging.INFO, "worker drained",
                  worker=self.worker_id, processed=processed,
                  completed=self.completed, failed=self.failed)
        return processed

    def _touch_registration(self) -> None:
        try:
            self.broker.worker_heartbeat(
                self.worker_id,
                completed=self.completed,
                failed=self.failed,
                # Cumulative, not a delta: a lost heartbeat costs nothing,
                # the next one supersedes it.  The front end merges the
                # latest snapshot per worker into GET /v1/metrics.
                metrics=get_metrics().snapshot(),
            )
        except Exception as error:  # noqa: BLE001 - observability must not kill the loop
            _obs_errors().inc(component="worker.registration")
            log_event(_LOG, logging.WARNING, "worker registration heartbeat failed",
                      worker=self.worker_id, error=repr(error))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, lease: Lease) -> None:
        trace_id = lease.payload.get("trace_id")
        stop_beat = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease, stop_beat, trace_id),
            name=f"repro-worker-heartbeat-{lease.job_id}",
            daemon=True,
        )
        beat.start()
        with bind_trace_id(trace_id):
            log_event(_LOG, logging.INFO, "job leased",
                      worker=self.worker_id, job=lease.job_id,
                      attempt=lease.attempt,
                      requests=len(lease.payload.get("requests", ())))
            started = time.perf_counter()
            try:
                requests = [
                    RunRequest.from_dict(entry) for entry in lease.payload["requests"]
                ]
                # Adopt the front end's span context from the ticket: the
                # worker's subtree parents under the serve-side dispatch
                # span, and each delivery is its own attempt-tagged span —
                # a re-delivered lease becomes a sibling, never a merge.
                with bind_span_context(lease.payload.get("span")):
                    with span("worker.execute", attempt=lease.attempt,
                              worker=self.worker_id,
                              proc=f"worker:{self.worker_id}"):
                        results = self.runner.run_batch(requests)
                payloads = [
                    suite_payload(request, result)
                    for request, result in zip(requests, results)
                ]
            except Exception as error:  # noqa: BLE001 - job faults must not kill the worker
                stop_beat.set()
                beat.join()
                message = str(error.args[0]) if error.args else str(error)
                self.failed += 1
                _job_counter().inc(outcome="failed")
                log_event(_LOG, logging.WARNING, "job failed",
                          worker=self.worker_id, job=lease.job_id,
                          attempt=lease.attempt, error=f"{type(error).__name__}: {message}")
                self.broker.fail(lease.job_id, self.worker_id,
                                 f"{type(error).__name__}: {message}",
                                 spans=drain_spans() or None)
                return
            stop_beat.set()
            beat.join()
            seconds = time.perf_counter() - started
            _execute_seconds().observe(seconds)
            # complete() is idempotent: if the lease expired mid-run and a
            # twin finished first, this is a quiet no-op (results being
            # deterministic, both copies are identical anyway).
            if self.broker.complete(lease.job_id, self.worker_id, payloads,
                                    spans=drain_spans() or None):
                self.completed += 1
                _job_counter().inc(outcome="completed")
                log_event(_LOG, logging.INFO, "job completed",
                          worker=self.worker_id, job=lease.job_id,
                          attempt=lease.attempt, seconds=round(seconds, 6))
            else:
                _job_counter().inc(outcome="duplicate")
                log_event(_LOG, logging.INFO, "job completed by twin",
                          worker=self.worker_id, job=lease.job_id,
                          attempt=lease.attempt, seconds=round(seconds, 6))

    def _heartbeat_loop(self, lease: Lease, stop: threading.Event,
                        trace_id: str | None) -> None:
        # contextvars do not cross thread boundaries — re-bind explicitly
        # so lease-loss warnings carry the job's trace id.
        with bind_trace_id(trace_id):
            while not stop.wait(self.heartbeat_interval):
                try:
                    self.broker.heartbeat(lease.job_id, self.worker_id)
                except LeaseLostError:
                    # Keep executing: completion stays correct (idempotent)
                    # and abandoning mid-run would waste the work when the
                    # re-delivered twin also dies.
                    log_event(_LOG, logging.WARNING, "lease lost mid-run",
                              worker=self.worker_id, job=lease.job_id,
                              attempt=lease.attempt)
                    return
                except Exception as error:  # noqa: BLE001 - transient: retry next beat
                    _obs_errors().inc(component="worker.heartbeat")
                    log_event(_LOG, logging.WARNING, "lease heartbeat failed",
                              worker=self.worker_id, job=lease.job_id,
                              error=repr(error))
                    continue
