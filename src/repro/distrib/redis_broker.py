"""An optional redis-backed broker (requires the ``redis`` package).

The container image does not bake redis in, so this module is imported
lazily by :func:`repro.distrib.connect_broker` when (and only when) a
``redis://`` broker URL is given; everything else in :mod:`repro.distrib`
works without it.  The semantics mirror :class:`~repro.distrib.memory.
MemoryBroker` / :class:`~repro.distrib.fsbroker.FileBroker`:

* the pending queue is a sorted set scored by not-before time; the
  atomic claim is ``ZREM`` (exactly one caller removes a member),
* leases are per-job hashes plus a deadline-scored sorted set for
  reaping,
* terminal states are ``SET NX`` writes, so completion is
  first-write-wins exactly like the file broker's ``os.link``.

This implementation is exercised only where redis is installed; the
brokers the test suite and CI verify are the memory and file ones.
"""

from __future__ import annotations

import json
from typing import Any

from repro.distrib.broker import (
    Broker,
    BrokerError,
    Lease,
    LeaseLostError,
    UnknownBrokerJobError,
    worker_view,
)

__all__ = ["RedisBroker"]


class RedisBroker(Broker):
    """Broker state in one redis instance; see the module docstring."""

    def __init__(self, url: str, prefix: str = "repro", **policy: Any) -> None:
        super().__init__(**policy)
        try:
            import redis  # noqa: PLC0415 - the whole point is a lazy optional import
        except ImportError as error:  # pragma: no cover - exercised without redis only
            raise BrokerError(
                "redis:// brokers need the optional 'redis' package "
                "(pip install redis); use a directory path for the "
                "dependency-free file broker instead"
            ) from error
        self._redis = redis.Redis.from_url(url, decode_responses=True)
        self.url = url
        self.prefix = prefix

    def describe(self) -> str:
        return f"redis:{self.url}"

    def _key(self, *parts: str) -> str:
        return ":".join((self.prefix, *parts))

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def publish(self, job_id: str, payload: dict, max_attempts: int | None = None) -> None:
        job_key = self._key("job", job_id)
        created = self._redis.hsetnx(job_key, "created", self._now())
        if not created:
            raise BrokerError(f"job {job_id!r} is already published")
        self._redis.hset(job_key, mapping={
            "payload": json.dumps(payload),
            "max_attempts": max_attempts or self.max_attempts,
        })
        self._enqueue(job_id, attempt=1, not_before=self._now())

    def _enqueue(self, job_id: str, attempt: int, not_before: float) -> None:
        self._redis.zadd(self._key("pending"), {f"{job_id}:{attempt}": not_before})

    def lease(self, worker_id: str) -> Lease | None:
        self.reap()
        now = self._now()
        candidates = self._redis.zrangebyscore(
            self._key("pending"), "-inf", now, start=0, num=8
        )
        for member in candidates:
            if not self._redis.zrem(self._key("pending"), member):
                continue  # another worker claimed it
            job_id, _, attempt_text = member.rpartition(":")
            attempt = int(attempt_text)
            if self._terminal_state(job_id) is not None:
                continue  # stale ticket for a finished job
            record = self._redis.hgetall(self._key("job", job_id))
            if not record:
                continue
            deadline = now + self.visibility
            self._redis.hset(self._key("lease", job_id), mapping={
                "worker": worker_id, "attempt": attempt, "deadline": deadline,
            })
            self._redis.zadd(self._key("leases"), {job_id: deadline})
            return Lease(job_id, json.loads(record["payload"]), attempt,
                         deadline, worker_id)
        return None

    def heartbeat(self, job_id: str, worker_id: str) -> float:
        lease = self._redis.hgetall(self._key("lease", job_id))
        if not lease or lease.get("worker") != worker_id:
            raise LeaseLostError(f"worker {worker_id!r} no longer holds job {job_id!r}")
        deadline = self._now() + self.visibility
        self._redis.hset(self._key("lease", job_id), "deadline", deadline)
        self._redis.zadd(self._key("leases"), {job_id: deadline})
        return deadline

    def complete(self, job_id: str, worker_id: str, results: Any,
                 spans: list | None = None) -> bool:
        if not self._redis.exists(self._key("job", job_id)):
            raise UnknownBrokerJobError(job_id)
        self._file_spans(job_id, spans)
        lease = self._redis.hgetall(self._key("lease", job_id))
        attempt = int(lease["attempt"]) if lease.get("worker") == worker_id else None
        won = bool(self._redis.set(self._key("done", job_id), json.dumps({
            "results": results, "worker": worker_id, "attempt": attempt,
            "finished": self._now(),
        }), nx=True))
        if won:
            self._redis.sadd(self._key("done_ids"), job_id)
            # Drop any stale re-queued ticket for the finished job.
            for member in self._redis.zrange(self._key("pending"), 0, -1):
                if member.rpartition(":")[0] == job_id:
                    self._redis.zrem(self._key("pending"), member)
        if lease.get("worker") == worker_id:
            self._drop_lease(job_id)
        return won

    def fail(self, job_id: str, worker_id: str, error: str,
             spans: list | None = None) -> None:
        record = self._redis.hgetall(self._key("job", job_id))
        if not record:
            raise UnknownBrokerJobError(job_id)
        self._file_spans(job_id, spans)
        lease = self._redis.hgetall(self._key("lease", job_id))
        if not lease or lease.get("worker") != worker_id:
            return  # reaped/re-delivered: that delivery owns the retry now
        self._drop_lease(job_id)
        attempt = int(lease["attempt"])
        self._redis.hset(self._key("job", job_id), "error", error)
        if attempt >= int(record.get("max_attempts", self.max_attempts)):
            self._write_dead(job_id, error, attempt)
        else:
            self._enqueue(job_id, attempt + 1, self._now() + self.backoff(attempt))

    def cancel(self, job_id: str) -> bool:
        if not self._redis.exists(self._key("job", job_id)):
            raise UnknownBrokerJobError(job_id)
        for member in self._redis.zrange(self._key("pending"), 0, -1):
            if member.rpartition(":")[0] == job_id:
                if self._redis.zrem(self._key("pending"), member):
                    self._redis.set(self._key("cancelled", job_id), json.dumps(
                        {"finished": self._now()}
                    ), nx=True)
                    self._redis.sadd(self._key("cancelled_ids"), job_id)
                    return True
        return False

    def reap(self) -> int:
        now = self._now()
        reaped = 0
        for job_id in self._redis.zrangebyscore(self._key("leases"), "-inf", now):
            if not self._redis.zrem(self._key("leases"), job_id):
                continue
            lease = self._redis.hgetall(self._key("lease", job_id))
            self._redis.delete(self._key("lease", job_id))
            if not lease or self._terminal_state(job_id) is not None:
                continue
            reaped += 1
            attempt = int(lease.get("attempt", 1))
            error = (f"lease expired after attempt {attempt} "
                     f"(worker {lease.get('worker', '?')})")
            self._redis.hset(self._key("job", job_id), "error", error)
            max_attempts = int(self._redis.hget(self._key("job", job_id), "max_attempts")
                               or self.max_attempts)
            if attempt >= max_attempts:
                self._write_dead(job_id, error, attempt)
            else:
                self._enqueue(job_id, attempt + 1, now + self.backoff(attempt))
        return reaped

    def _drop_lease(self, job_id: str) -> None:
        self._redis.delete(self._key("lease", job_id))
        self._redis.zrem(self._key("leases"), job_id)

    def _file_spans(self, job_id: str, spans: list | None) -> None:
        # One rpush per report: re-delivered attempts append as siblings.
        if spans:
            self._redis.rpush(self._key("spans", job_id), json.dumps(spans))

    def _job_spans(self, job_id: str) -> list:
        collected: list = []
        for chunk in self._redis.lrange(self._key("spans", job_id), 0, -1):
            try:
                collected.extend(json.loads(chunk))
            except (TypeError, ValueError):
                continue
        return collected

    def _write_dead(self, job_id: str, error: str, attempts: int) -> None:
        self._redis.set(self._key("dead", job_id), json.dumps({
            "error": error, "attempts": attempts, "finished": self._now(),
        }), nx=True)
        self._redis.sadd(self._key("dead_ids"), job_id)

    def _terminal_state(self, job_id: str) -> str | None:
        for state in ("done", "dead", "cancelled"):
            if self._redis.exists(self._key(state, job_id)):
                return state
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self, job_id: str) -> dict[str, Any]:
        record = self._redis.hgetall(self._key("job", job_id))
        if not record:
            raise UnknownBrokerJobError(job_id)
        base = {
            "id": job_id,
            "created": float(record["created"]),
            "max_attempts": int(record.get("max_attempts", self.max_attempts)),
            "error": record.get("error"),
        }
        done = self._redis.get(self._key("done", job_id))
        if done is not None:
            doc = json.loads(done)
            return {**base, "state": "done", "attempts": doc["attempt"],
                    "worker": doc["worker"], "results": doc["results"],
                    "finished": doc["finished"], "error": None,
                    "spans": self._job_spans(job_id)}
        dead = self._redis.get(self._key("dead", job_id))
        if dead is not None:
            doc = json.loads(dead)
            return {**base, "state": "dead", "attempts": doc["attempts"],
                    "worker": None, "results": None,
                    "finished": doc["finished"], "error": doc["error"],
                    "spans": self._job_spans(job_id)}
        cancelled = self._redis.get(self._key("cancelled", job_id))
        if cancelled is not None:
            return {**base, "state": "cancelled", "attempts": 0, "worker": None,
                    "results": None, "finished": json.loads(cancelled)["finished"]}
        lease = self._redis.hgetall(self._key("lease", job_id))
        if lease:
            return {**base, "state": "leased", "attempts": int(lease["attempt"]),
                    "worker": lease["worker"], "results": None,
                    "deadline": float(lease["deadline"]), "finished": None}
        for member in self._redis.zrange(self._key("pending"), 0, -1, withscores=True):
            name, score = member
            if name.rpartition(":")[0] == job_id:
                return {**base, "state": "pending",
                        "attempts": int(name.rpartition(":")[2]) - 1,
                        "worker": None, "results": None, "not_before": score,
                        "finished": None}
        return {**base, "state": "pending", "attempts": None, "worker": None,
                "results": None, "finished": None}

    def counts(self) -> dict[str, int]:
        return {
            "pending": self._redis.zcard(self._key("pending")),
            "leased": self._redis.zcard(self._key("leases")),
            "done": self._redis.scard(self._key("done_ids")),
            "dead": self._redis.scard(self._key("dead_ids")),
            "cancelled": self._redis.scard(self._key("cancelled_ids")),
        }

    def dead_letters(self, limit: int = 20) -> list[dict[str, Any]]:
        rows = []
        for job_id in self._redis.smembers(self._key("dead_ids")):
            raw = self._redis.get(self._key("dead", job_id))
            if raw is None:
                continue
            doc = json.loads(raw)
            rows.append({"id": job_id, "error": doc.get("error"),
                         "attempts": doc.get("attempts"),
                         "finished": doc.get("finished")})
        rows.sort(key=lambda row: row["finished"] or 0, reverse=True)
        return rows[:limit]

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------

    def register_worker(self, worker_id: str, capabilities: dict[str, Any]) -> None:
        now = self._now()
        self._redis.hset(self._key("workers"), worker_id, json.dumps({
            "id": worker_id, "capabilities": capabilities,
            "started": now, "heartbeat": now, "completed": 0, "failed": 0,
        }))

    def worker_heartbeat(
        self,
        worker_id: str,
        completed: int | None = None,
        failed: int | None = None,
        metrics: dict[str, Any] | None = None,
    ) -> None:
        raw = self._redis.hget(self._key("workers"), worker_id)
        if raw is None:
            raise BrokerError(f"worker {worker_id!r} is not registered")
        record = json.loads(raw)
        record["heartbeat"] = self._now()
        if completed is not None:
            record["completed"] = completed
        if failed is not None:
            record["failed"] = failed
        if metrics is not None:
            record["metrics"] = metrics
        self._redis.hset(self._key("workers"), worker_id, json.dumps(record))

    def deregister_worker(self, worker_id: str) -> None:
        self._redis.hdel(self._key("workers"), worker_id)

    def workers(self) -> list[dict[str, Any]]:
        now = self._now()
        records = self._redis.hgetall(self._key("workers"))
        return [
            worker_view(json.loads(raw), now, self.worker_ttl)
            for _, raw in sorted(records.items())
        ]

    def close(self) -> None:
        self._redis.close()
