"""``repro.distrib`` — the multi-host scale-out subsystem.

The single-process service (:mod:`repro.service`) executes jobs on its
own runner; this package splits that across processes and hosts in the
coordinator/broker/worker shape:

* :mod:`repro.distrib.broker` — the :class:`Broker` contract: published
  jobs, leases with visibility timeouts, heartbeats, retry-with-backoff,
  bounded attempts ending in a dead-letter state, first-write-wins
  completion, and a worker registry with capability tags,
* :mod:`repro.distrib.memory` — :class:`MemoryBroker`, in-process (tests
  and single-host composition),
* :mod:`repro.distrib.fsbroker` — :class:`FileBroker`, a shared
  directory usable across processes and hosts (no new dependencies),
* :mod:`repro.distrib.redis_broker` — an optional redis-backed broker,
  imported only when a ``redis://`` URL is used,
* :mod:`repro.distrib.worker` — :class:`FleetWorker`, the ``repro
  worker`` loop: lease → execute → heartbeat → complete, with graceful
  drain.

Topology: N ``repro serve --broker <spec>`` front ends publish jobs and
watch for their completion; M ``repro worker --broker <spec>`` processes
execute them; one shared result store (``--store-dir``) keeps the
terminal documents.  ``connect_broker`` turns the shared ``--broker``
spec (a directory path, ``memory``, or a ``redis://`` URL) into a live
broker.
"""

from __future__ import annotations

from typing import Any

from repro.distrib.broker import (
    Broker,
    BrokerError,
    Lease,
    LeaseLostError,
    UnknownBrokerJobError,
)
from repro.distrib.fsbroker import FileBroker
from repro.distrib.memory import MemoryBroker
from repro.distrib.worker import FleetWorker, new_worker_id

__all__ = [
    "Broker",
    "BrokerError",
    "FileBroker",
    "FleetWorker",
    "Lease",
    "LeaseLostError",
    "MemoryBroker",
    "UnknownBrokerJobError",
    "connect_broker",
    "new_worker_id",
]


def connect_broker(spec: str, **policy: Any) -> Broker:
    """A live broker from a ``--broker`` / ``REPRO_BROKER`` spec.

    * ``memory`` (or ``memory:``) — an in-process :class:`MemoryBroker`
      (only useful when front end and workers share one process, e.g.
      tests and benchmarks),
    * ``redis://...`` / ``rediss://...`` — the optional redis broker
      (raises a clear :class:`BrokerError` when the package is absent),
    * anything else — a directory path for the :class:`FileBroker`
      (created on first use; share it between hosts to span machines).
    """
    if not spec:
        raise ValueError("broker spec must be a directory path, 'memory' or a redis:// URL")
    if spec in ("memory", "memory:"):
        return MemoryBroker(**policy)
    if spec.startswith(("redis://", "rediss://")):
        from repro.distrib.redis_broker import RedisBroker

        return RedisBroker(spec, **policy)
    return FileBroker(spec, **policy)
