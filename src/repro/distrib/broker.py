"""The broker contract: leased job delivery between front ends and workers.

A *broker* is the hand-off point of the distributed deployment: front
ends (:class:`~repro.service.core.SimulationService` in broker-dispatch
mode) **publish** jobs, stateless workers (:class:`~repro.distrib.worker.
FleetWorker`) **lease** them one at a time, **heartbeat** while
executing, and **complete** or **fail** them.  The broker owns the
at-least-once delivery semantics:

* a lease carries a *visibility timeout* — a worker that stops
  heartbeating (crashed, partitioned, OOM-killed) loses the job when the
  deadline passes and :meth:`Broker.reap` re-queues it,
* every re-queue increments the attempt counter and delays the next
  delivery by an exponential backoff, so a poison job cannot spin a
  worker loop hot,
* after ``max_attempts`` deliveries the job moves to the terminal
  **dead-letter** state, carrying its last error,
* completion is first-write-wins: when an expired lease was re-delivered
  and *both* workers finish (results are deterministic, so both are
  correct), the second :meth:`Broker.complete` is a no-op returning
  ``False`` — never an error, never a double write.

Workers additionally *register* with capability tags (live backends,
core count, host/pid) and refresh a registration heartbeat, so the fleet
is observable from any front end (``GET /v1/stats``, ``repro fleet``).

Two implementations ship: :class:`~repro.distrib.memory.MemoryBroker`
(in-process, for tests and single-host composition) and
:class:`~repro.distrib.fsbroker.FileBroker` (a shared directory; usable
across processes and across hosts on a shared filesystem).  A
redis-backed broker (:mod:`repro.distrib.redis_broker`) is available
behind an optional import.  All implementations accept an injectable
``clock`` so lease-expiry and backoff semantics are testable without
sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import get_metrics

__all__ = [
    "Broker",
    "BrokerError",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BACKOFF_CAP",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_VISIBILITY_TIMEOUT",
    "DEFAULT_WORKER_TTL",
    "JOB_STATES",
    "Lease",
    "LeaseLostError",
    "UnknownBrokerJobError",
]

#: Seconds a lease stays valid without a heartbeat.
DEFAULT_VISIBILITY_TIMEOUT = 30.0
#: Deliveries (first + retries) before a job dead-letters.
DEFAULT_MAX_ATTEMPTS = 3
#: First retry delay; doubles per attempt up to the cap.
DEFAULT_BACKOFF_BASE = 0.5
DEFAULT_BACKOFF_CAP = 30.0
#: A worker whose registration heartbeat is older than this is shown dead.
DEFAULT_WORKER_TTL = 30.0

#: Broker job lifecycle: pending → leased → done, or back to pending on
#: lease expiry / execution failure, ending in dead after max attempts.
JOB_STATES = ("pending", "leased", "done", "dead", "cancelled")


class BrokerError(RuntimeError):
    """A broker-level protocol violation."""


class UnknownBrokerJobError(KeyError):
    """The broker has never seen the requested job id."""


class LeaseLostError(BrokerError):
    """The lease was reaped (expired) or taken over before the call."""


@dataclass(frozen=True)
class Lease:
    """One delivery of a job to one worker.

    ``attempt`` is 1-based and counts deliveries, not failures: the
    first lease of a job is attempt 1.  ``deadline`` is the wall-clock
    time the lease expires unless extended by a heartbeat.
    """

    job_id: str
    payload: dict
    attempt: int
    deadline: float
    worker_id: str


class Broker:
    """Interface + shared policy knobs; see the module docstring.

    Subclasses implement the storage; retry/backoff/visibility policy
    lives here so every implementation agrees on the semantics.
    """

    def __init__(
        self,
        visibility: float = DEFAULT_VISIBILITY_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        worker_ttl: float = DEFAULT_WORKER_TTL,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if visibility <= 0:
            raise ValueError(f"visibility must be positive, got {visibility}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
        self.visibility = visibility
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.worker_ttl = worker_ttl
        self._clock = clock or time.time

    def _now(self) -> float:
        return self._clock()

    def backoff(self, attempt: int) -> float:
        """Delay before re-delivering after ``attempt`` deliveries."""
        return min(self.backoff_base * (2 ** max(attempt - 1, 0)), self.backoff_cap)

    def _note(self, event: str, amount: int = 1) -> None:
        """Count a delivery event in *this* process' metrics registry.

        Events: ``published``, ``leased``, ``completed``, ``retried``
        (failure re-queue), ``reaped`` (lease-expiry re-queue) and
        ``dead_lettered``.  Counts land wherever the broker object lives
        — the front end for publishes, each worker for its own leases —
        and meet again on the front end's ``/v1/metrics`` via the
        worker-heartbeat snapshot merge.
        """
        if amount:
            get_metrics().counter(
                "repro_broker_events_total",
                "Broker delivery events by type.",
                ("event",),
            ).inc(amount, event=event)

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def publish(self, job_id: str, payload: dict, max_attempts: int | None = None) -> None:
        """Enqueue ``payload`` (JSON-pure) for delivery as ``job_id``.

        The caller supplies the id so the broker job keeps the identity
        of the service job that produced it.  Re-publishing an id is a
        :class:`BrokerError`.
        """
        raise NotImplementedError

    def lease(self, worker_id: str) -> Lease | None:
        """Claim the oldest deliverable job, or ``None`` when idle.

        Implementations reap expired leases opportunistically before
        scanning, so a fleet needs no dedicated reaper process (front
        ends reap too, covering the all-workers-died case).
        """
        raise NotImplementedError

    def heartbeat(self, job_id: str, worker_id: str) -> float:
        """Extend the lease by the visibility timeout; returns the new
        deadline.  Raises :class:`LeaseLostError` when the lease expired
        or belongs to another worker."""
        raise NotImplementedError

    def complete(self, job_id: str, worker_id: str, results: Any,
                 spans: list | None = None) -> bool:
        """Record results; ``True`` if this call won, ``False`` for a
        duplicate completion (already done — first write wins).

        ``spans`` are the completed trace spans of the executing attempt
        (ship-once, like metrics deltas).  They are stored *next to* the
        results — never inside them, so job results stay byte-identical
        with tracing on or off — and surface through :meth:`snapshot`'s
        ``spans`` key.  Span accumulation is per-attempt: a duplicate
        completion loses the results race but still files its spans, so
        re-delivered attempts appear as sibling subtrees of one trace.
        """
        raise NotImplementedError

    def fail(self, job_id: str, worker_id: str, error: str,
             spans: list | None = None) -> None:
        """Record an execution failure: re-queue with backoff, or
        dead-letter once the attempt budget is spent.  ``spans`` from
        the failed attempt accumulate like :meth:`complete`'s."""
        raise NotImplementedError

    def cancel(self, job_id: str) -> bool:
        """Cancel a *pending* job; ``False`` when it is leased or
        terminal (the caller decides whether that is a conflict)."""
        raise NotImplementedError

    def snapshot(self, job_id: str) -> dict[str, Any]:
        """The broker's view of one job: ``state`` (:data:`JOB_STATES`),
        ``attempts``, ``worker``, ``error``, ``results`` and timing
        fields.  Raises :class:`UnknownBrokerJobError`."""
        raise NotImplementedError

    def reap(self) -> int:
        """Re-queue (or dead-letter) expired leases; returns how many
        leases were taken over."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------

    def register_worker(self, worker_id: str, capabilities: dict[str, Any]) -> None:
        raise NotImplementedError

    def worker_heartbeat(
        self,
        worker_id: str,
        completed: int | None = None,
        failed: int | None = None,
        metrics: dict[str, Any] | None = None,
    ) -> None:
        """Refresh the registration heartbeat (and job counters).

        ``metrics`` is the worker's latest *cumulative* metrics-registry
        snapshot (:meth:`repro.obs.MetricsRegistry.snapshot`); the broker
        stores only the most recent one per worker, so a lost heartbeat
        never loses counts — the next snapshot supersedes it.  Front ends
        fold these into ``GET /v1/metrics``.
        """
        raise NotImplementedError

    def deregister_worker(self, worker_id: str) -> None:
        raise NotImplementedError

    def workers(self) -> list[dict[str, Any]]:
        """Registered workers with ``heartbeat_age`` and ``alive`` derived
        from :attr:`worker_ttl`, sorted by worker id."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A short human-readable locator (shown by ``repro fleet``)."""
        return type(self).__name__

    def counts(self) -> dict[str, int]:
        """Jobs per state (``pending``/``leased``/``done``/``dead``/
        ``cancelled``)."""
        raise NotImplementedError

    def dead_letters(self, limit: int = 20) -> list[dict[str, Any]]:
        """The most recently dead-lettered jobs, newest first.

        Each row carries ``id``, ``error`` (the last delivery's failure
        string), ``attempts`` and ``finished`` — enough for ``/v1/stats``
        and ``repro fleet`` to say *why* a job died without a per-job
        lookup.  Implementations that do not track dead letters may
        return an empty list.
        """
        return []

    def stats(self) -> dict[str, Any]:
        """The fleet document rendered into ``/v1/stats``."""
        now = self._now()
        # Worker rows minus the metrics snapshots they heartbeat in —
        # those belong to /v1/metrics, not a human-facing stats document.
        workers = [
            {key: value for key, value in row.items() if key != "metrics"}
            for row in self.workers()
        ]
        return {
            "broker": self.describe(),
            "visibility_timeout": self.visibility,
            "max_attempts": self.max_attempts,
            "jobs": self.counts(),
            "dead_letters": self.dead_letters(),
            "workers": workers,
            "workers_alive": sum(1 for worker in workers if worker["alive"]),
            "generated": now,
        }

    def close(self) -> None:
        """Release broker resources (no-op for most implementations)."""


def worker_view(record: dict[str, Any], now: float, ttl: float) -> dict[str, Any]:
    """Derive the observable worker row from a stored registration."""
    heartbeat = record.get("heartbeat", record.get("started", now))
    age = max(now - heartbeat, 0.0)
    view = dict(record)
    view["heartbeat_age"] = age
    view["alive"] = age <= ttl
    return view
