"""Local (per-branch) history and its speculative management.

Section 6 of the paper augments TAGE with a Statistical Corrector indexed
by *local* history (the LSC predictor).  Two structures are needed:

* a small direct-mapped :class:`LocalHistoryTable` holding the retired
  local history of each (hashed) branch PC — the paper finds a 32-entry
  table sufficient because a handful of static branches concentrate most
  mispredictions;
* a :class:`SpeculativeLocalHistoryManager` (Figure 8) tracking, for every
  in-flight branch, the speculative local history it produced so that
  back-to-back occurrences of the same branch see an up-to-date history
  before the older occurrence retires.  The paper notes that this
  structure is so close to the IUM that a real design would merge them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import mask

__all__ = ["LocalHistoryTable", "SpeculativeLocalHistoryManager"]


class LocalHistoryTable:
    """Direct-mapped table of per-branch local direction histories.

    Parameters
    ----------
    entries:
        Number of table entries; must be a power of two (the paper uses 32).
    history_bits:
        Number of direction bits retained per entry (the LSC observes up to
        31 bits of local history, so the default keeps 32).
    """

    def __init__(self, entries: int = 32, history_bits: int = 32) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries}")
        if history_bits < 1:
            raise ValueError("history_bits must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._index_mask = entries - 1
        self._histories = [0] * entries

    def index(self, pc: int) -> int:
        """Map a branch PC to its table entry (direct mapped on hashed PC bits).

        A few higher PC bits are folded in so that branches whose addresses
        differ only above the low bits (same position in different code
        blocks) do not all collapse onto the same entry.
        """
        return ((pc >> 2) ^ (pc >> 7) ^ (pc >> 13)) & self._index_mask

    def read(self, pc: int) -> int:
        """Return the retired local history of ``pc``."""
        return self._histories[self.index(pc)]

    def read_by_index(self, index: int) -> int:
        """Return the retired local history stored at ``index``."""
        return self._histories[index]

    def update(self, pc: int, taken: bool) -> None:
        """Shift the retired outcome of ``pc`` into its local history."""
        idx = self.index(pc)
        shifted = ((self._histories[idx] << 1) | (1 if taken else 0)) & mask(self.history_bits)
        self._histories[idx] = shifted

    def clear(self) -> None:
        """Forget all local histories."""
        self._histories = [0] * self.entries

    @property
    def storage_bits(self) -> int:
        """Total storage held by the table."""
        return self.entries * self.history_bits


@dataclass
class _InflightLocalEntry:
    """One in-flight branch tracked by the speculative local history manager."""

    sequence: int
    pc: int
    table_index: int
    speculative_history: int


class SpeculativeLocalHistoryManager:
    """Speculative Local History Manager (Figure 8 of the paper).

    The manager keeps one entry per in-flight branch.  At prediction time
    the most recent in-flight occurrence mapping to the same local-history
    table entry provides the speculative history; otherwise the retired
    history from the :class:`LocalHistoryTable` is used.  On a
    misprediction all younger entries are squashed; on retirement the
    oldest entry is released.
    """

    def __init__(self, local_table: LocalHistoryTable, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.local_table = local_table
        self.capacity = capacity
        self._entries: list[_InflightLocalEntry] = []
        self._next_sequence = 0

    def __len__(self) -> int:
        return len(self._entries)

    def speculative_history(self, pc: int) -> int:
        """Return the local history ``pc`` should observe right now.

        The most recent in-flight branch hitting the same local-history
        table entry provides its speculative history; otherwise the
        retired history is read from the backing table.
        """
        table_index = self.local_table.index(pc)
        for entry in reversed(self._entries):
            if entry.table_index == table_index:
                return entry.speculative_history
        return self.local_table.read_by_index(table_index)

    def record(self, pc: int, predicted_taken: bool) -> int:
        """Record a newly fetched branch and return its sequence number.

        The speculative history stored is the history *after* shifting in
        the predicted direction, so a younger same-entry branch observes
        the effect of this (still speculative) branch.
        """
        history = self.speculative_history(pc)
        new_history = ((history << 1) | (1 if predicted_taken else 0)) & mask(
            self.local_table.history_bits
        )
        entry = _InflightLocalEntry(
            sequence=self._next_sequence,
            pc=pc,
            table_index=self.local_table.index(pc),
            speculative_history=new_history,
        )
        self._next_sequence += 1
        self._entries.append(entry)
        if len(self._entries) > self.capacity:
            self._entries.pop(0)
        return entry.sequence

    def repair(self, sequence: int, actual_taken: bool) -> None:
        """Repair after a misprediction of the branch with ``sequence``.

        All younger speculative entries are squashed (they were on the
        wrong path) and the mispredicted branch's own speculative history
        is rewritten with the corrected direction.
        """
        self._entries = [entry for entry in self._entries if entry.sequence <= sequence]
        for entry in self._entries:
            if entry.sequence == sequence:
                corrected = (entry.speculative_history >> 1) << 1 | (1 if actual_taken else 0)
                entry.speculative_history = corrected & mask(self.local_table.history_bits)
                break

    def retire(self, sequence: int, pc: int, taken: bool) -> None:
        """Retire the branch with ``sequence``: commit its outcome and free its entry."""
        self.local_table.update(pc, taken)
        self._entries = [entry for entry in self._entries if entry.sequence != sequence]

    def clear(self) -> None:
        """Drop every in-flight entry (e.g. on a pipeline flush)."""
        self._entries = []
