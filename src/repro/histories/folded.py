"""Incrementally folded (compressed) branch histories.

A TAGE table indexed with a 640-bit history cannot XOR all 640 bits at
prediction time; instead the hardware maintains, per table, a small
"circular shift register" (CSR) that always equals the XOR-fold of the most
recent ``history_length`` bits down to ``compressed_length`` bits.  On every
new branch the CSR is updated in O(1) by inserting the incoming bit and
removing the outgoing one.  This module provides that structure and a
convenience set that keeps the index fold and the two tag folds of a TAGE
table in sync, as the released TAGE simulators do.
"""

from __future__ import annotations

from repro.common.bits import mask
from repro.histories.global_history import GlobalHistoryRegister

__all__ = ["FoldedHistory", "FoldedHistorySet"]


class FoldedHistory:
    """A compressed history register tracking an XOR fold incrementally.

    Parameters
    ----------
    history_length:
        Number of global-history bits folded.
    compressed_length:
        Width of the fold in bits.

    The invariant maintained is that :attr:`value` always equals
    :meth:`recompute` applied to the source history — the property-based
    tests exercise exactly this equivalence.
    """

    def __init__(self, history_length: int, compressed_length: int) -> None:
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if compressed_length < 1:
            raise ValueError("compressed_length must be positive")
        self.history_length = history_length
        self.compressed_length = compressed_length
        self.outpoint = history_length % compressed_length
        self.value = 0

    def update(self, inserted_bit: int, dropped_bit: int) -> None:
        """Rotate the fold: insert the newest history bit, remove the oldest.

        Parameters
        ----------
        inserted_bit:
            Direction (0/1) of the branch entering the history window.
        dropped_bit:
            Direction (0/1) of the branch leaving the window, i.e. the bit
            that was ``history_length`` branches ago *before* this update.
        """
        self.value = (self.value << 1) | (inserted_bit & 1)
        self.value ^= (dropped_bit & 1) << self.outpoint
        self.value ^= self.value >> self.compressed_length
        self.value &= mask(self.compressed_length)

    def recompute(self, history: GlobalHistoryRegister) -> int:
        """Recompute the fold from scratch from ``history`` (reference model).

        The incremental update is XOR-linear: a history bit of age ``i``
        (``i = 0`` is the most recent branch) has been rotated left ``i``
        times since it was inserted at position 0, so it contributes at bit
        position ``i mod compressed_length``.  Bits older than
        ``history_length`` have been cancelled out by the dropped-bit XOR.
        The incremental :meth:`update` must always agree with this direct
        computation; the property-based tests check the equivalence.
        """
        folded = 0
        window = min(self.history_length, len(history))
        for i in range(window):
            folded ^= history.bit(i) << (i % self.compressed_length)
        return folded

    def checkpoint(self) -> int:
        """Snapshot the fold value."""
        return self.value

    def restore(self, snapshot: int) -> None:
        """Restore a snapshot taken by :meth:`checkpoint`."""
        self.value = snapshot

    def clear(self) -> None:
        """Reset the fold to the all-zero history."""
        self.value = 0


class FoldedHistorySet:
    """The three folds a TAGE tagged table keeps: index, tag CSR1 and tag CSR2.

    Published TAGE implementations compute the partial tag from two folds
    of slightly different widths (``tag_width`` and ``tag_width - 1``) so
    that the tag is not a simple rotation of the index; we mirror that.
    """

    def __init__(self, history_length: int, index_width: int, tag_width: int) -> None:
        self.history_length = history_length
        self.index_fold = FoldedHistory(history_length, index_width)
        self.tag_fold_1 = FoldedHistory(history_length, tag_width)
        self.tag_fold_2 = FoldedHistory(history_length, max(1, tag_width - 1))

    def update(self, inserted_bit: int, dropped_bit: int) -> None:
        """Advance all three folds by one branch."""
        self.index_fold.update(inserted_bit, dropped_bit)
        self.tag_fold_1.update(inserted_bit, dropped_bit)
        self.tag_fold_2.update(inserted_bit, dropped_bit)

    def checkpoint(self) -> tuple[int, int, int]:
        """Snapshot all three folds."""
        return (
            self.index_fold.checkpoint(),
            self.tag_fold_1.checkpoint(),
            self.tag_fold_2.checkpoint(),
        )

    def restore(self, snapshot: tuple[int, int, int]) -> None:
        """Restore all three folds from a snapshot."""
        self.index_fold.restore(snapshot[0])
        self.tag_fold_1.restore(snapshot[1])
        self.tag_fold_2.restore(snapshot[2])

    def clear(self) -> None:
        """Reset all folds."""
        self.index_fold.clear()
        self.tag_fold_1.clear()
        self.tag_fold_2.clear()
