"""Branch-history machinery shared by the global- and local-history predictors.

This subpackage provides the history state that every predictor in the
paper reads:

* :class:`~repro.histories.global_history.GlobalHistoryRegister` — the
  speculative global direction history, implemented as a circular buffer
  with checkpoint/repair as the paper suggests for misprediction recovery,
* :class:`~repro.histories.global_history.PathHistory` — the short PC path
  history that TAGE mixes into its index functions,
* :class:`~repro.histories.folded.FoldedHistory` — the incrementally
  maintained "circular shift register" folds used to hash very long
  histories into table indices and tags,
* :func:`~repro.histories.geometric.geometric_series` — the geometric
  history-length series L(i) introduced with O-GEHL,
* :class:`~repro.histories.local.LocalHistoryTable` and
  :class:`~repro.histories.local.SpeculativeLocalHistoryManager` — the
  per-branch local histories used by the LSC predictor (Section 6).
"""

from repro.histories.folded import FoldedHistory, FoldedHistorySet
from repro.histories.geometric import geometric_series
from repro.histories.global_history import GlobalHistoryRegister, PathHistory
from repro.histories.local import LocalHistoryTable, SpeculativeLocalHistoryManager

__all__ = [
    "FoldedHistory",
    "FoldedHistorySet",
    "GlobalHistoryRegister",
    "LocalHistoryTable",
    "PathHistory",
    "SpeculativeLocalHistoryManager",
    "geometric_series",
]
