"""Speculative global branch history and path history.

The global history register records the directions of the most recent
conditional branches.  It is updated *speculatively* at prediction time and
must be repaired when a misprediction is discovered.  The paper (Section
5.1) notes that repair is straightforward when the history is held in a
circular buffer with a head pointer: restoring the head pointer and
re-writing the mispredicted bit is enough.  This module implements exactly
that structure, together with the short "path history" of low-order PC bits
that TAGE mixes into its index functions.
"""

from __future__ import annotations

__all__ = ["GlobalHistoryRegister", "PathHistory"]


class GlobalHistoryRegister:
    """Circular-buffer global direction history with checkpoint/repair.

    Parameters
    ----------
    capacity:
        Number of history bits retained.  Must be at least as large as the
        longest history length any predictor component observes; the
        reference TAGE predictor uses up to 2000 bits so the default is
        sized with margin.

    Notes
    -----
    ``bit(i)`` returns the direction of the ``i``-th most recent branch
    (``i = 0`` is the most recent).  ``checkpoint()`` / ``restore()`` allow
    the pipeline model to repair the speculative history on a
    misprediction, mimicking the hardware head-pointer repair.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("history capacity must be positive")
        self.capacity = capacity
        self._buffer = bytearray(capacity)
        self._head = 0  # position of the most recent bit
        self._count = 0  # number of bits pushed so far (saturates at capacity)

    def push(self, taken: bool) -> None:
        """Speculatively append one branch outcome (most recent first)."""
        self._head = (self._head + 1) % self.capacity
        self._buffer[self._head] = 1 if taken else 0
        if self._count < self.capacity:
            self._count += 1

    def bit(self, index: int) -> int:
        """Return the direction of the ``index``-th most recent branch (0 or 1)."""
        if index < 0:
            raise IndexError("history index must be non-negative")
        if index >= self.capacity:
            raise IndexError(f"history index {index} exceeds capacity {self.capacity}")
        return self._buffer[(self._head - index) % self.capacity]

    def value(self, length: int) -> int:
        """Pack the ``length`` most recent history bits into an integer.

        Bit 0 of the result is the most recent branch direction.  This is a
        convenience for predictors (gshare, GEHL) that hash a bounded
        history window; TAGE uses the incrementally folded histories in
        :mod:`repro.histories.folded` instead.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        length = min(length, self.capacity)
        packed = 0
        for i in range(length):
            packed |= self.bit(i) << i
        return packed

    def checkpoint(self) -> tuple[int, int]:
        """Snapshot the history state (head pointer and fill count)."""
        return self._head, self._count

    def restore(self, snapshot: tuple[int, int], corrected_outcome: bool | None = None) -> None:
        """Restore a snapshot taken *before* the mispredicted branch was pushed.

        Parameters
        ----------
        snapshot:
            The value returned by :meth:`checkpoint`.
        corrected_outcome:
            When given, the mispredicted branch is re-pushed with its
            corrected direction, exactly as the hardware repair described
            in Section 5.1 does.
        """
        self._head, self._count = snapshot
        if corrected_outcome is not None:
            self.push(corrected_outcome)

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        """Forget all history."""
        self._buffer = bytearray(self.capacity)
        self._head = 0
        self._count = 0


class PathHistory:
    """Short path history made of low-order PC bits of recent branches.

    TAGE mixes a few path-history bits into its index functions to
    disambiguate branches that share the same direction history.  Published
    TAGE code keeps 16 to 32 bits of path history built from one low-order
    address bit per branch; we follow that convention.
    """

    def __init__(self, width: int = 32, bits_per_branch: int = 1) -> None:
        if width < 1:
            raise ValueError("path history width must be positive")
        if bits_per_branch < 1 or bits_per_branch > width:
            raise ValueError("bits_per_branch must be in [1, width]")
        self.width = width
        self.bits_per_branch = bits_per_branch
        self._value = 0

    @property
    def value(self) -> int:
        """Current packed path history."""
        return self._value

    def push(self, pc: int) -> None:
        """Shift in ``bits_per_branch`` low-order bits of ``pc``."""
        low = pc & ((1 << self.bits_per_branch) - 1)
        self._value = ((self._value << self.bits_per_branch) | low) & ((1 << self.width) - 1)

    def checkpoint(self) -> int:
        """Snapshot the packed path history."""
        return self._value

    def restore(self, snapshot: int) -> None:
        """Restore a snapshot taken by :meth:`checkpoint`."""
        self._value = snapshot

    def clear(self) -> None:
        """Forget all path history."""
        self._value = 0
