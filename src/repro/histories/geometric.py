"""Geometric history-length series.

The TAGE and GEHL families index their component tables with history
lengths that form a geometric series,

    L(i) = int(alpha**(i-1) * L(1) + 0.5),

so that most of the storage observes short histories while a few tables
capture correlation with branches hundreds or thousands of branches in the
past (Section 3 of the paper).  The reference TAGE predictor uses the
(6, 2000) series over 12 tagged tables; Section 6.2 evaluates (3, 300),
(4, 1000), (8, 5000), (6, 1000) and (6, 500) variants.
"""

from __future__ import annotations

import math

__all__ = ["geometric_series"]


def geometric_series(min_length: int, max_length: int, count: int) -> list[int]:
    """Return ``count`` history lengths growing geometrically.

    Parameters
    ----------
    min_length:
        History length of the first (shortest) tagged table, ``L(1)``.
    max_length:
        History length of the last (longest) tagged table, ``L(count)``.
    count:
        Number of tagged tables.

    Returns
    -------
    list[int]
        Monotonically non-decreasing history lengths.  Adjacent duplicates
        produced by rounding at small lengths are nudged apart so that each
        table observes a distinct history length, matching the behaviour of
        the released TAGE simulators.

    >>> geometric_series(6, 2000, 12)[0]
    6
    >>> geometric_series(6, 2000, 12)[-1]
    2000
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if min_length < 1:
        raise ValueError("min_length must be at least 1")
    if max_length < min_length:
        raise ValueError("max_length must be >= min_length")
    if count == 1:
        return [min_length]

    alpha = (max_length / min_length) ** (1.0 / (count - 1))
    lengths = [int(alpha ** i * min_length + 0.5) for i in range(count)]
    lengths[0] = min_length
    lengths[-1] = max_length

    # Rounding can collapse the shortest lengths onto each other (e.g. a
    # (3, 300) series over many tables); keep them strictly increasing.
    for i in range(1, count):
        if lengths[i] <= lengths[i - 1]:
            lengths[i] = lengths[i - 1] + 1
    if lengths[-1] < max_length:
        lengths[-1] = max_length
    return lengths


def validate_series(lengths: list[int]) -> None:
    """Raise ``ValueError`` unless ``lengths`` is a valid increasing series."""
    if not lengths:
        raise ValueError("history series must not be empty")
    if any(length < 1 for length in lengths):
        raise ValueError("history lengths must be positive")
    if any(b <= a for a, b in zip(lengths, lengths[1:])):
        raise ValueError(f"history lengths must be strictly increasing, got {lengths}")


def _self_test() -> None:  # pragma: no cover - debugging helper
    series = geometric_series(6, 2000, 12)
    validate_series(series)
    assert math.isclose(series[-1], 2000)
