"""``python -m repro`` — the ``repro`` CLI without installation."""

from repro.api.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
